#include "fmm/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "trace/trace.hpp"
#include "util/require.hpp"

namespace eroof::fmm {
namespace {

constexpr int kMinLevel = 2;  // expansions exist from this level down

/// Annotates a finished phase span with the phase's tallies and mirrors them
/// into the session's counter registry as "fmm.<phase>.<tally>" so
/// regression tests can compare runs bit-for-bit.
void record_phase(trace::ScopedSpan& span, const char* phase,
                  const FmmStats::Phase& p) {
  if (!span.active()) return;
  span.arg("kernel_evals", p.kernel_evals);
  span.arg("pair_count", p.pair_count);
  span.arg("ffts", p.ffts);
  span.arg("hadamard_cmuls", p.hadamard_cmuls);
  span.arg("solve_matvecs", p.solve_matvecs);
  const std::string prefix = std::string("fmm.") + phase + ".";
  trace::counter_add(prefix + "kernel_evals", p.kernel_evals);
  trace::counter_add(prefix + "pair_count", p.pair_count);
  trace::counter_add(prefix + "ffts", p.ffts);
  trace::counter_add(prefix + "hadamard_cmuls", p.hadamard_cmuls);
  trace::counter_add(prefix + "solve_matvecs", p.solve_matvecs);
}

/// y += M x  (dense, row-major), tallying into `matvecs`.
void add_matvec(const la::Matrix& m, std::span<const double> x,
                std::span<double> y) {
  EROOF_REQUIRE(x.size() == m.cols() && y.size() == m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const auto row = m.row(i);
    double acc = 0;
    for (std::size_t j = 0; j < row.size(); ++j) acc += row[j] * x[j];
    y[i] += acc;
  }
}

}  // namespace

FmmEvaluator::FmmEvaluator(const Kernel& kernel, std::span<const Vec3> points,
                           Octree::Params tree_params, FmmConfig cfg)
    : kernel_(kernel),
      tree_(points, tree_params),
      lists_(build_lists(tree_)),
      ops_(kernel, tree_.domain().half, tree_.max_depth(), cfg) {}

std::vector<double> FmmEvaluator::evaluate(std::span<const double> densities) {
  EROOF_REQUIRE(densities.size() == tree_.points().size());
  stats_ = FmmStats{};

  // Permute densities into tree order.
  const auto orig = tree_.original_index();
  std::vector<double> dens(densities.size());
  for (std::size_t i = 0; i < dens.size(); ++i)
    dens[i] = densities[orig[i]];

  const std::size_t n_nodes = tree_.nodes().size();
  const std::size_t ns = ops_.n_surf();
  up_equiv_.assign(n_nodes, {});
  down_check_.assign(n_nodes, std::vector<double>(ns, 0.0));
  down_equiv_.assign(n_nodes, {});

  trace::ScopedSpan eval_span("evaluate", "fmm");
  if (eval_span.active()) {
    eval_span.arg("n_points", static_cast<double>(dens.size()));
    eval_span.arg("n_nodes", static_cast<double>(n_nodes));
  }

  std::vector<double> phi(dens.size(), 0.0);
  {
    trace::ScopedSpan span("UP", "fmm.phase");
    upward_pass(dens);
    record_phase(span, "UP", stats_.up);
  }
  {
    trace::ScopedSpan span("V", "fmm.phase");
    v_phase();
    record_phase(span, "V", stats_.v);
  }
  {
    trace::ScopedSpan span("X", "fmm.phase");
    x_phase(dens);
    record_phase(span, "X", stats_.x);
  }
  {
    // DOWN covers the DC2E/L2L sweep and the L2P leaf outputs: both tally
    // into stats_.down, matching the paper's phase taxonomy.
    trace::ScopedSpan span("DOWN", "fmm.phase");
    downward_pass();
    l2p_pass(phi);
    record_phase(span, "DOWN", stats_.down);
  }
  {
    trace::ScopedSpan span("U", "fmm.phase");
    u_pass(dens, phi);
    record_phase(span, "U", stats_.u);
  }
  {
    trace::ScopedSpan span("W", "fmm.phase");
    w_pass(phi);
    record_phase(span, "W", stats_.w);
  }

  // Un-permute the potentials to the caller's order.
  std::vector<double> out(phi.size());
  for (std::size_t i = 0; i < phi.size(); ++i) out[orig[i]] = phi[i];
  return out;
}

std::vector<double> FmmEvaluator::evaluate_at(
    const Kernel& kernel, std::span<const Vec3> targets,
    std::span<const Vec3> sources, std::span<const double> densities,
    Octree::Params tree_params, FmmConfig cfg) {
  EROOF_REQUIRE(!targets.empty());
  EROOF_REQUIRE(sources.size() == densities.size());

  std::vector<Vec3> all;
  all.reserve(sources.size() + targets.size());
  all.insert(all.end(), sources.begin(), sources.end());
  all.insert(all.end(), targets.begin(), targets.end());
  std::vector<double> dens(all.size(), 0.0);
  std::copy(densities.begin(), densities.end(), dens.begin());

  FmmEvaluator ev(kernel, all, tree_params, cfg);
  const auto phi = ev.evaluate(dens);
  return std::vector<double>(phi.begin() + static_cast<long>(sources.size()),
                             phi.end());
}

void FmmEvaluator::upward_pass(std::span<const double> dens) {
  const auto pts = tree_.points();
  const std::size_t ns = ops_.n_surf();
  const auto& by_level = tree_.nodes_by_level();

  for (int l = tree_.max_depth(); l >= kMinLevel; --l) {
    const LevelOperators& ops = ops_.level(l);
    const auto& level_nodes = by_level[static_cast<std::size_t>(l)];
#pragma omp parallel for schedule(dynamic)
    for (std::size_t ni = 0; ni < level_nodes.size(); ++ni) {
      const int b = level_nodes[ni];
      const Node& node = tree_.node(b);
      std::vector<double> check(ns, 0.0);

      if (node.leaf) {
        // P2M: source points -> upward check potentials.
        const auto check_pts =
            surface_points(ops_.p(), node.box, kRadiusOuter);
        for (std::size_t c = 0; c < ns; ++c) {
          double acc = 0;
          for (std::uint32_t i = node.point_begin; i < node.point_end; ++i)
            acc += kernel_.eval(check_pts[c], pts[i]) * dens[i];
          check[c] = acc;
        }
      } else {
        // M2M: children's equivalent densities -> this box's check surface.
        for (int c : node.children) {
          if (c < 0) continue;
          add_matvec(ops.m2m[tree_.node(c).key.octant_in_parent()],
                     up_equiv_[static_cast<std::size_t>(c)], check);
        }
      }

      // UC2E solve: check potentials -> equivalent density.
      auto& equiv = up_equiv_[static_cast<std::size_t>(b)];
      equiv.assign(ns, 0.0);
      add_matvec(ops.uc2e, check, equiv);
    }

    // Tallies (outside the parallel region; counts are deterministic).
    for (const int b : level_nodes) {
      const Node& node = tree_.node(b);
      if (node.leaf)
        stats_.up.kernel_evals += static_cast<double>(ns) * node.num_points();
      else
        for (int c : node.children)
          if (c >= 0) stats_.up.solve_matvecs += 1;
      stats_.up.solve_matvecs += 1;  // the UC2E solve
    }
  }
}

void FmmEvaluator::v_phase() {
  const std::size_t ns = ops_.n_surf();
  const std::size_t g = ops_.grid_size();
  const auto& by_level = tree_.nodes_by_level();

  for (int l = kMinLevel; l <= tree_.max_depth(); ++l) {
    const auto& level_nodes = by_level[static_cast<std::size_t>(l)];
    if (level_nodes.empty()) continue;

    if (!ops_.config().use_fft_m2l) {
      // Dense fallback: per-pair kernel matrix application.
      for (const int b : level_nodes) {
        const auto& vlist = lists_.v[static_cast<std::size_t>(b)];
        if (vlist.empty()) continue;
        const auto check_pts =
            surface_points(ops_.p(), tree_.node(b).box, kRadiusInner);
        auto& check = down_check_[static_cast<std::size_t>(b)];
        for (const int s : vlist) {
          const auto src_pts =
              surface_points(ops_.p(), tree_.node(s).box, kRadiusInner);
          const auto& q = up_equiv_[static_cast<std::size_t>(s)];
          for (std::size_t i = 0; i < ns; ++i) {
            double acc = 0;
            for (std::size_t j = 0; j < ns; ++j)
              acc += kernel_.eval(check_pts[i], src_pts[j]) * q[j];
            check[i] += acc;
          }
          stats_.v.kernel_evals += static_cast<double>(ns) * ns;
          stats_.v.pair_count += 1;
        }
      }
      continue;
    }

    // Forward FFT of every level-l node's equivalent-density grid.
    std::vector<std::size_t> pos_in_level(tree_.nodes().size(), 0);
    std::vector<fft::cplx> spectra(level_nodes.size() * g);
    for (std::size_t ni = 0; ni < level_nodes.size(); ++ni)
      pos_in_level[static_cast<std::size_t>(level_nodes[ni])] = ni;
#pragma omp parallel for schedule(dynamic)
    for (std::size_t ni = 0; ni < level_nodes.size(); ++ni) {
      const int b = level_nodes[ni];
      std::span<fft::cplx> grid(spectra.data() + ni * g, g);
      ops_.embed(up_equiv_[static_cast<std::size_t>(b)], grid);
      ops_.plan().forward(grid);
    }
    stats_.v.ffts += static_cast<double>(level_nodes.size());

    // Per target: accumulate Hadamard products in Fourier space, one
    // inverse FFT, then scatter onto the downward check surface.
    const LevelOperators& ops = ops_.level(l);
#pragma omp parallel for schedule(dynamic)
    for (std::size_t ni = 0; ni < level_nodes.size(); ++ni) {
      const int b = level_nodes[ni];
      const auto& vlist = lists_.v[static_cast<std::size_t>(b)];
      if (vlist.empty()) continue;
      const auto bc = tree_.node(b).key.coords();
      std::vector<fft::cplx> acc(g, fft::cplx{0, 0});
      for (const int s : vlist) {
        const auto sc = tree_.node(s).key.coords();
        const auto rel = Operators::rel_index(
            static_cast<int>(bc[0]) - static_cast<int>(sc[0]),
            static_cast<int>(bc[1]) - static_cast<int>(sc[1]),
            static_cast<int>(bc[2]) - static_cast<int>(sc[2]));
        EROOF_REQUIRE_MSG(rel.has_value(), "V-list pair in the near field");
        const auto& t_hat = ops.m2l_fft[*rel];
        const fft::cplx* q_hat = spectra.data() + pos_in_level[static_cast<std::size_t>(s)] * g;
        for (std::size_t k = 0; k < g; ++k) acc[k] += t_hat[k] * q_hat[k];
      }
      ops_.plan().inverse(acc);
      std::vector<double> vals(ns);
      ops_.extract(acc, vals);
      auto& check = down_check_[static_cast<std::size_t>(b)];
      for (std::size_t i = 0; i < ns; ++i) check[i] += vals[i];
    }
    for (const int b : level_nodes) {
      const auto& vlist = lists_.v[static_cast<std::size_t>(b)];
      if (vlist.empty()) continue;
      stats_.v.pair_count += static_cast<double>(vlist.size());
      stats_.v.hadamard_cmuls +=
          static_cast<double>(vlist.size()) * static_cast<double>(g);
      stats_.v.ffts += 1;  // the inverse transform
    }
  }
}

void FmmEvaluator::x_phase(std::span<const double> dens) {
  const auto pts = tree_.points();
  const std::size_t ns = ops_.n_surf();
  const auto& nodes = tree_.nodes();
#pragma omp parallel for schedule(dynamic)
  for (std::size_t b = 0; b < nodes.size(); ++b) {
    const auto& xlist = lists_.x[b];
    if (xlist.empty()) continue;
    // P2L: X-node source points -> this node's downward check surface.
    const auto check_pts =
        surface_points(ops_.p(), nodes[b].box, kRadiusInner);
    auto& check = down_check_[b];
    for (const int a : xlist) {
      const Node& src = tree_.node(a);
      for (std::size_t c = 0; c < ns; ++c) {
        double acc = 0;
        for (std::uint32_t i = src.point_begin; i < src.point_end; ++i)
          acc += kernel_.eval(check_pts[c], pts[i]) * dens[i];
        check[c] += acc;
      }
    }
  }
  for (std::size_t b = 0; b < nodes.size(); ++b) {
    for (const int a : lists_.x[b]) {
      stats_.x.kernel_evals +=
          static_cast<double>(ns) * tree_.node(a).num_points();
      stats_.x.pair_count += 1;
    }
  }
}

void FmmEvaluator::downward_pass() {
  const std::size_t ns = ops_.n_surf();
  const auto& by_level = tree_.nodes_by_level();

  for (int l = kMinLevel; l <= tree_.max_depth(); ++l) {
    const LevelOperators& ops = ops_.level(l);
    const auto& level_nodes = by_level[static_cast<std::size_t>(l)];
#pragma omp parallel for schedule(dynamic)
    for (std::size_t ni = 0; ni < level_nodes.size(); ++ni) {
      const int b = level_nodes[ni];
      // DC2E solve: accumulated check potentials -> equivalent density.
      auto& equiv = down_equiv_[static_cast<std::size_t>(b)];
      equiv.assign(ns, 0.0);
      add_matvec(ops.dc2e, down_check_[static_cast<std::size_t>(b)], equiv);

      // L2L: push to children's check surfaces (children are untouched by
      // any other iteration of this loop, so this is race-free).
      const Node& node = tree_.node(b);
      for (int c : node.children) {
        if (c < 0) continue;
        add_matvec(ops.l2l[tree_.node(c).key.octant_in_parent()], equiv,
                   down_check_[static_cast<std::size_t>(c)]);
      }
    }
    for (const int b : level_nodes) {
      stats_.down.solve_matvecs += 1;
      for (int c : tree_.node(b).children)
        if (c >= 0) stats_.down.solve_matvecs += 1;
    }
  }
}

void FmmEvaluator::l2p_pass(std::span<double> phi) {
  const auto pts = tree_.points();
  const std::size_t ns = ops_.n_surf();
  const auto& leaves = tree_.leaves();

  // L2P: downward equivalent density -> target points.
#pragma omp parallel for schedule(dynamic)
  for (std::size_t li = 0; li < leaves.size(); ++li) {
    const int b = leaves[li];
    const Node& node = tree_.node(b);
    if (node.level() < kMinLevel) continue;
    const auto equiv_pts = surface_points(ops_.p(), node.box, kRadiusOuter);
    const auto& equiv = down_equiv_[static_cast<std::size_t>(b)];
    for (std::uint32_t i = node.point_begin; i < node.point_end; ++i) {
      double acc = 0;
      for (std::size_t j = 0; j < ns; ++j)
        acc += kernel_.eval(pts[i], equiv_pts[j]) * equiv[j];
      phi[i] += acc;
    }
  }

  for (const int b : leaves) {
    const Node& node = tree_.node(b);
    if (node.level() >= kMinLevel)
      stats_.down.kernel_evals +=
          node.num_points() * static_cast<double>(ns);
  }
}

void FmmEvaluator::u_pass(std::span<const double> dens,
                          std::span<double> phi) {
  const auto pts = tree_.points();
  const auto& leaves = tree_.leaves();

  // U: direct P2P with adjacent leaves (self included; K(x,x) == 0).
#pragma omp parallel for schedule(dynamic)
  for (std::size_t li = 0; li < leaves.size(); ++li) {
    const int b = leaves[li];
    const Node& node = tree_.node(b);
    for (const int a : lists_.u[static_cast<std::size_t>(b)]) {
      const Node& src = tree_.node(a);
      for (std::uint32_t i = node.point_begin; i < node.point_end; ++i) {
        double acc = 0;
        for (std::uint32_t j = src.point_begin; j < src.point_end; ++j)
          acc += kernel_.eval(pts[i], pts[j]) * dens[j];
        phi[i] += acc;
      }
    }
  }

  for (const int b : leaves) {
    const double npts = tree_.node(b).num_points();
    for (const int a : lists_.u[static_cast<std::size_t>(b)]) {
      stats_.u.kernel_evals +=
          npts * static_cast<double>(tree_.node(a).num_points());
      stats_.u.pair_count += 1;
    }
  }
}

void FmmEvaluator::w_pass(std::span<double> phi) {
  const auto pts = tree_.points();
  const std::size_t ns = ops_.n_surf();
  const auto& leaves = tree_.leaves();

  // W: M2P from W-node equivalent densities.
#pragma omp parallel for schedule(dynamic)
  for (std::size_t li = 0; li < leaves.size(); ++li) {
    const int b = leaves[li];
    const Node& node = tree_.node(b);
    for (const int a : lists_.w[static_cast<std::size_t>(b)]) {
      const auto equiv_pts =
          surface_points(ops_.p(), tree_.node(a).box, kRadiusInner);
      const auto& equiv = up_equiv_[static_cast<std::size_t>(a)];
      for (std::uint32_t i = node.point_begin; i < node.point_end; ++i) {
        double acc = 0;
        for (std::size_t j = 0; j < ns; ++j)
          acc += kernel_.eval(pts[i], equiv_pts[j]) * equiv[j];
        phi[i] += acc;
      }
    }
  }

  for (const int b : leaves) {
    const double npts = tree_.node(b).num_points();
    for ([[maybe_unused]] const int a :
         lists_.w[static_cast<std::size_t>(b)]) {
      stats_.w.kernel_evals += npts * static_cast<double>(ns);
      stats_.w.pair_count += 1;
    }
  }
}

}  // namespace eroof::fmm
