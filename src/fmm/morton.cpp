#include "fmm/morton.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace eroof::fmm {

std::uint64_t interleave3(std::uint32_t v) {
  std::uint64_t x = v & 0xFFFFFu;  // 20 bits
  x = (x | (x << 32)) & 0x1F00000000FFFFULL;
  x = (x | (x << 16)) & 0x1F0000FF0000FFULL;
  x = (x | (x << 8)) & 0x100F00F00F00F00FULL;
  x = (x | (x << 4)) & 0x10C30C30C30C30C3ULL;
  x = (x | (x << 2)) & 0x1249249249249249ULL;
  return x;
}

std::uint32_t deinterleave3(std::uint64_t x) {
  x &= 0x1249249249249249ULL;
  x = (x | (x >> 2)) & 0x10C30C30C30C30C3ULL;
  x = (x | (x >> 4)) & 0x100F00F00F00F00FULL;
  x = (x | (x >> 8)) & 0x1F0000FF0000FFULL;
  x = (x | (x >> 16)) & 0x1F00000000FFFFULL;
  x = (x | (x >> 32)) & 0xFFFFFull;
  return static_cast<std::uint32_t>(x);
}

MortonKey MortonKey::from_coords(int level, std::uint32_t x, std::uint32_t y,
                                 std::uint32_t z) {
  EROOF_REQUIRE(level >= 0 && level <= kMaxLevel);
  const std::uint32_t cells = level == 0 ? 1u : (1u << level);
  EROOF_REQUIRE(x < cells && y < cells && z < cells);
  MortonKey k;
  k.bits_ = (static_cast<std::uint64_t>(level) << 60) | interleave3(x) |
            (interleave3(y) << 1) | (interleave3(z) << 2);
  return k;
}

MortonKey MortonKey::from_point(int level, double x, double y, double z) {
  EROOF_REQUIRE(level >= 0 && level <= kMaxLevel);
  EROOF_REQUIRE_MSG(x >= 0 && x < 1 && y >= 0 && y < 1 && z >= 0 && z < 1,
                    "point must lie in the unit cube [0,1)^3");
  const double cells = std::exp2(level);
  const auto cell = [&](double c) {
    return static_cast<std::uint32_t>(
        std::min(c * cells, cells - 1.0));
  };
  return from_coords(level, cell(x), cell(y), cell(z));
}

std::array<std::uint32_t, 3> MortonKey::coords() const {
  const std::uint64_t c = bits_ & 0x0FFFFFFFFFFFFFFFULL;
  return {deinterleave3(c), deinterleave3(c >> 1), deinterleave3(c >> 2)};
}

MortonKey MortonKey::parent() const {
  EROOF_REQUIRE(level() > 0);
  const auto [x, y, z] = coords();
  return from_coords(level() - 1, x >> 1, y >> 1, z >> 1);
}

MortonKey MortonKey::child(unsigned octant) const {
  EROOF_REQUIRE(octant < 8 && level() < kMaxLevel);
  const auto [x, y, z] = coords();
  return from_coords(level() + 1, (x << 1) | (octant & 1u),
                     (y << 1) | ((octant >> 1) & 1u),
                     (z << 1) | ((octant >> 2) & 1u));
}

unsigned MortonKey::octant_in_parent() const {
  EROOF_REQUIRE(level() > 0);
  const auto [x, y, z] = coords();
  return (x & 1u) | ((y & 1u) << 1) | ((z & 1u) << 2);
}

std::vector<MortonKey> MortonKey::neighbors() const {
  const int lvl = level();
  const auto [x, y, z] = coords();
  const std::int64_t cells = std::int64_t{1} << lvl;
  std::vector<MortonKey> out;
  out.reserve(26);
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const std::int64_t nx = static_cast<std::int64_t>(x) + dx;
        const std::int64_t ny = static_cast<std::int64_t>(y) + dy;
        const std::int64_t nz = static_cast<std::int64_t>(z) + dz;
        if (nx < 0 || ny < 0 || nz < 0 || nx >= cells || ny >= cells ||
            nz >= cells)
          continue;
        out.push_back(from_coords(lvl, static_cast<std::uint32_t>(nx),
                                  static_cast<std::uint32_t>(ny),
                                  static_cast<std::uint32_t>(nz)));
      }
    }
  }
  return out;
}

}  // namespace eroof::fmm
