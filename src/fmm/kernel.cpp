#include "fmm/kernel.hpp"

#include <cmath>
#include <numbers>

namespace eroof::fmm {
namespace {

constexpr double kFourPiInv = 1.0 / (4.0 * std::numbers::pi);

}  // namespace

void Kernel::eval_batch(const PointBlock& targets, const PointBlock& sources,
                        const double* density, double* out) const {
  for (std::size_t i = 0; i < targets.n; ++i) {
    const Vec3 t{targets.x[i], targets.y[i], targets.z[i]};
    double acc = 0;
    for (std::size_t j = 0; j < sources.n; ++j)
      acc += eval(t, {sources.x[j], sources.y[j], sources.z[j]}) * density[j];
    out[i] += acc;
  }
}

void LaplaceKernel::eval_batch(const PointBlock& targets,
                               const PointBlock& sources,
                               const double* density, double* out) const {
  const std::size_t nt = targets.n;
  const std::size_t ns = sources.n;
  const double* sx = sources.x;
  const double* sy = sources.y;
  const double* sz = sources.z;
  // eroof: hot-begin (Laplace batched P2M/P2P/P2L/L2P/M2P inner loops)
  for (std::size_t i = 0; i < nt; ++i) {
    const double tx = targets.x[i];
    const double ty = targets.y[i];
    const double tz = targets.z[i];
    double acc = 0;
    // eroof-lint: allow(nondet-omp) simd-only reduction: lane count is fixed
    // at compile time, so the accumulation order never varies across runs or
    // thread counts (verified bitwise by tests/fmm/test_eval_batch.cpp).
#pragma omp simd reduction(+ : acc)
    for (std::size_t j = 0; j < ns; ++j) {
      const double dx = tx - sx[j];
      const double dy = ty - sy[j];
      const double dz = tz - sz[j];
      const double r2 = dx * dx + dy * dy + dz * dz;
      // Unconditional divide + select: r2 == 0 yields inf, blended away.
      // Keeping the division out of a branch lets the loop if-convert and
      // vectorize; packed sqrt/div are correctly rounded, so each lane is
      // bitwise identical to eval().
      const double k = kFourPiInv / std::sqrt(r2);
      acc += (r2 == 0.0 ? 0.0 : k) * density[j];
    }
    out[i] += acc;
  }
  // eroof: hot-end
}

void YukawaKernel::eval_batch(const PointBlock& targets,
                              const PointBlock& sources, const double* density,
                              double* out) const {
  const std::size_t nt = targets.n;
  const std::size_t ns = sources.n;
  const double* sx = sources.x;
  const double* sy = sources.y;
  const double* sz = sources.z;
  const double lambda = lambda_;
  // eroof: hot-begin (Yukawa batched inner loops)
  for (std::size_t i = 0; i < nt; ++i) {
    const double tx = targets.x[i];
    const double ty = targets.y[i];
    const double tz = targets.z[i];
    double acc = 0;
    // eroof-lint: allow(nondet-omp) simd-only reduction, fixed lane order
#pragma omp simd reduction(+ : acc)
    for (std::size_t j = 0; j < ns; ++j) {
      const double dx = tx - sx[j];
      const double dy = ty - sy[j];
      const double dz = tz - sz[j];
      const double r2 = dx * dx + dy * dy + dz * dz;
      const double r = std::sqrt(r2);
      // Branch-free as in the Laplace loop; exp() vectorizes through the
      // glibc simd math declarations when available.
      const double k = kFourPiInv * std::exp(-lambda * r) / r;
      acc += (r2 == 0.0 ? 0.0 : k) * density[j];
    }
    out[i] += acc;
  }
  // eroof: hot-end
}

void GaussianKernel::eval_batch(const PointBlock& targets,
                                const PointBlock& sources,
                                const double* density, double* out) const {
  const std::size_t nt = targets.n;
  const std::size_t ns = sources.n;
  const double* sx = sources.x;
  const double* sy = sources.y;
  const double* sz = sources.z;
  const double two_sigma2 = 2.0 * sigma_ * sigma_;
  // eroof: hot-begin (Gaussian batched inner loops)
  for (std::size_t i = 0; i < nt; ++i) {
    const double tx = targets.x[i];
    const double ty = targets.y[i];
    const double tz = targets.z[i];
    double acc = 0;
    // eroof-lint: allow(nondet-omp) simd-only reduction, fixed lane order
#pragma omp simd reduction(+ : acc)
    for (std::size_t j = 0; j < ns; ++j) {
      const double dx = tx - sx[j];
      const double dy = ty - sy[j];
      const double dz = tz - sz[j];
      const double r2 = dx * dx + dy * dy + dz * dz;
      acc += std::exp(-r2 / two_sigma2) * density[j];
    }
    out[i] += acc;
  }
  // eroof: hot-end
}

la::Matrix Kernel::matrix(std::span<const Vec3> targets,
                          std::span<const Vec3> sources) const {
  la::Matrix k(targets.size(), sources.size());
  for (std::size_t i = 0; i < targets.size(); ++i)
    for (std::size_t j = 0; j < sources.size(); ++j)
      k(i, j) = eval(targets[i], sources[j]);
  return k;
}

double LaplaceKernel::eval(const Vec3& x, const Vec3& y) const {
  const Vec3 d = x - y;
  const double r2 = d.dot(d);
  if (r2 == 0.0) return 0.0;
  return kFourPiInv / std::sqrt(r2);
}

double YukawaKernel::eval(const Vec3& x, const Vec3& y) const {
  const Vec3 d = x - y;
  const double r2 = d.dot(d);
  if (r2 == 0.0) return 0.0;
  const double r = std::sqrt(r2);
  return kFourPiInv * std::exp(-lambda_ * r) / r;
}

double GaussianKernel::eval(const Vec3& x, const Vec3& y) const {
  const Vec3 d = x - y;
  return std::exp(-d.dot(d) / (2.0 * sigma_ * sigma_));
}

}  // namespace eroof::fmm
