#include "fmm/kernel.hpp"

#include <cmath>
#include <numbers>

namespace eroof::fmm {
namespace {

constexpr double kFourPiInv = 1.0 / (4.0 * std::numbers::pi);

}  // namespace

la::Matrix Kernel::matrix(std::span<const Vec3> targets,
                          std::span<const Vec3> sources) const {
  la::Matrix k(targets.size(), sources.size());
  for (std::size_t i = 0; i < targets.size(); ++i)
    for (std::size_t j = 0; j < sources.size(); ++j)
      k(i, j) = eval(targets[i], sources[j]);
  return k;
}

double LaplaceKernel::eval(const Vec3& x, const Vec3& y) const {
  const Vec3 d = x - y;
  const double r2 = d.dot(d);
  if (r2 == 0.0) return 0.0;
  return kFourPiInv / std::sqrt(r2);
}

double YukawaKernel::eval(const Vec3& x, const Vec3& y) const {
  const Vec3 d = x - y;
  const double r2 = d.dot(d);
  if (r2 == 0.0) return 0.0;
  const double r = std::sqrt(r2);
  return kFourPiInv * std::exp(-lambda_ * r) / r;
}

double GaussianKernel::eval(const Vec3& x, const Vec3& y) const {
  const Vec3 d = x - y;
  return std::exp(-d.dot(d) / (2.0 * sigma_ * sigma_));
}

}  // namespace eroof::fmm
