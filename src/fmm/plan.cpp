#include "fmm/plan.hpp"

#include <utility>

#include "util/require.hpp"

namespace eroof::fmm {
namespace {

constexpr int kMinLevel = 2;  // expansions exist from this level down

/// FNV-1a over the 8 bytes of one 64-bit value.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::shared_ptr<const Kernel> require_kernel(
    std::shared_ptr<const Kernel> kernel) {
  EROOF_REQUIRE_MSG(kernel != nullptr, "FmmPlan needs a kernel");
  return kernel;
}

}  // namespace

std::uint64_t tree_structure_signature(const Octree& tree) {
  const auto& nodes = tree.nodes();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = mix(h, nodes.size());
  h = mix(h, static_cast<std::uint64_t>(tree.max_depth()));
  for (const Node& n : nodes) {
    h = mix(h, n.key.raw());
    h = mix(h, n.leaf ? 1u : 0u);
  }
  return h;
}

FmmDagSkeleton build_fmm_dag_skeleton(const Octree& tree,
                                      const InteractionLists& lists,
                                      bool use_fft_m2l) {
  const auto& nodes = tree.nodes();
  const auto& by_level = tree.nodes_by_level();

  // Arena-slot and X-target derivations: pure functions of the structure,
  // recomputed here exactly as the evaluator computes them.
  std::vector<int> slot(nodes.size(), -1);
  int n_slots = 0;
  for (std::size_t b = 0; b < nodes.size(); ++b)
    if (nodes[b].level() >= kMinLevel) slot[b] = n_slots++;
  std::vector<int> x_targets;
  for (std::size_t b = 0; b < nodes.size(); ++b)
    if (!lists.x[b].empty() && slot[b] >= 0)
      x_targets.push_back(static_cast<int>(b));

  util::TaskGraph g;
  FmmDagSkeleton s;
  const auto add = [&](FmmDagKind kind, int tag, int node) {
    s.kind.push_back(kind);
    s.node.push_back(node);
    return g.add_task(tag);
  };

  std::vector<int> up_t(nodes.size(), -1);
  std::vector<int> fft_t(nodes.size(), -1);
  std::vector<int> v_t(nodes.size(), -1);
  std::vector<int> x_t(nodes.size(), -1);
  std::vector<int> down_t(nodes.size(), -1);
  std::vector<int> l2p_t(nodes.size(), -1);
  std::vector<int> u_t(nodes.size(), -1);

  // UP: one task per expansion-bearing node; a parent starts after all of
  // its children (M2M reads their equivalent densities).
  for (int l = tree.max_depth(); l >= kMinLevel; --l)
    for (const int b : by_level[static_cast<std::size_t>(l)])
      up_t[static_cast<std::size_t>(b)] = add(FmmDagKind::kUp, kDagTagUp, b);
  for (std::size_t b = 0; b < nodes.size(); ++b) {
    if (up_t[b] < 0 || nodes[b].leaf) continue;
    for (int c : nodes[b].children)
      if (c >= 0) g.add_edge(up_t[static_cast<std::size_t>(c)], up_t[b]);
  }

  // V: with FFT M2L, a forward-FFT task per expansion-bearing node (the
  // phases path also transforms every node of a level) and one Hadamard
  // task per node with a non-empty v-list, after all its sources' spectra.
  // The dense fallback needs the sources' equivalent densities directly.
  if (use_fft_m2l) {
    for (std::size_t b = 0; b < nodes.size(); ++b) {
      if (up_t[b] < 0) continue;
      fft_t[b] = add(FmmDagKind::kFft, kDagTagV, static_cast<int>(b));
      g.add_edge(up_t[b], fft_t[b]);
    }
    for (std::size_t b = 0; b < nodes.size(); ++b) {
      if (up_t[b] < 0 || lists.v[b].empty()) continue;
      v_t[b] = add(FmmDagKind::kVHad, kDagTagV, static_cast<int>(b));
      for (const int src : lists.v[b])
        g.add_edge(fft_t[static_cast<std::size_t>(src)], v_t[b]);
    }
  } else {
    for (std::size_t b = 0; b < nodes.size(); ++b) {
      if (up_t[b] < 0 || lists.v[b].empty()) continue;
      v_t[b] = add(FmmDagKind::kVDense, kDagTagV, static_cast<int>(b));
      for (const int src : lists.v[b])
        g.add_edge(up_t[static_cast<std::size_t>(src)], v_t[b]);
    }
  }

  // X: P2L adds follow the V commit on the same check surface (phases-path
  // write order). Sources are raw point ranges, so there is no other dep.
  for (const int b : x_targets) {
    const auto bi = static_cast<std::size_t>(b);
    x_t[bi] = add(FmmDagKind::kX, kDagTagX, b);
    if (v_t[bi] >= 0) g.add_edge(v_t[bi], x_t[bi]);
  }

  // Last far-field writer of a node's downward check surface (before L2L).
  const auto vlast = [&](std::size_t b) {
    return x_t[b] >= 0 ? x_t[b] : v_t[b];
  };

  // DOWN: one DC2E+L2L task per expansion-bearing node. A node's task runs
  // after its parent's (which L2L-appends to its check surface); the parent
  // in turn waits for every child's V/X commits so the append lands after
  // them, as in the phases path. Top-level nodes (no expansion-bearing
  // parent) wait directly on their own V/X.
  for (int l = kMinLevel; l <= tree.max_depth(); ++l)
    for (const int b : by_level[static_cast<std::size_t>(l)])
      down_t[static_cast<std::size_t>(b)] =
          add(FmmDagKind::kDown, kDagTagDown, b);
  for (int l = kMinLevel; l <= tree.max_depth(); ++l) {
    for (const int b : by_level[static_cast<std::size_t>(l)]) {
      const auto bi = static_cast<std::size_t>(b);
      if (l == kMinLevel && vlast(bi) >= 0) g.add_edge(vlast(bi), down_t[bi]);
      if (nodes[bi].leaf) continue;
      for (int c : nodes[bi].children) {
        if (c < 0) continue;
        const auto ci = static_cast<std::size_t>(c);
        g.add_edge(down_t[bi], down_t[ci]);
        if (vlast(ci) >= 0) g.add_edge(vlast(ci), down_t[bi]);
      }
    }
  }

  // Leaf output tasks, chained per leaf so phi[leaf range] accumulates in
  // the canonical order L2P -> U -> W regardless of schedule.
  for (const int b : tree.leaves()) {
    const auto bi = static_cast<std::size_t>(b);
    if (slot[bi] >= 0) {
      l2p_t[bi] = add(FmmDagKind::kL2p, kDagTagDown, b);
      g.add_edge(down_t[bi], l2p_t[bi]);
    }
    u_t[bi] = add(FmmDagKind::kU, kDagTagU, b);
    if (l2p_t[bi] >= 0) g.add_edge(l2p_t[bi], u_t[bi]);
    if (!lists.w[bi].empty()) {
      const int wt = add(FmmDagKind::kW, kDagTagW, b);
      g.add_edge(u_t[bi], wt);
      // M2P reads the w-nodes' upward equivalent densities.
      for (const int a : lists.w[bi])
        g.add_edge(up_t[static_cast<std::size_t>(a)], wt);
    }
  }

  g.seal();
  s.topology = g.share_topology();
  s.tree_signature = tree_structure_signature(tree);
  return s;
}

FmmPlan::FmmPlan(std::shared_ptr<const Kernel> kernel, double root_half,
                 int max_depth, FmmConfig cfg)
    : kernel_(require_kernel(std::move(kernel))),
      root_half_(root_half),
      max_depth_(max_depth),
      ops_(*kernel_, root_half, max_depth, cfg) {
  EROOF_REQUIRE(root_half_ > 0);
  EROOF_REQUIRE(max_depth_ >= 0);
}

std::shared_ptr<const Kernel> FmmPlan::borrow_kernel(const Kernel& kernel) {
  return std::shared_ptr<const Kernel>(std::shared_ptr<const void>{}, &kernel);
}

std::shared_ptr<FmmPlan> FmmPlan::for_tree(std::shared_ptr<const Kernel> kernel,
                                           const Octree& tree, FmmConfig cfg) {
  return std::make_shared<FmmPlan>(std::move(kernel), tree.domain().half,
                                   tree.max_depth(), cfg);
}

void FmmPlan::attach_dag_skeleton(FmmDagSkeleton skeleton) {
  EROOF_REQUIRE_MSG(!skeleton_, "skeleton already attached");
  EROOF_REQUIRE(skeleton.topology != nullptr);
  EROOF_REQUIRE(skeleton.kind.size() == skeleton.topology->task_count());
  EROOF_REQUIRE(skeleton.node.size() == skeleton.topology->task_count());
  skeleton_ = std::move(skeleton);
}

}  // namespace eroof::fmm
