// Immutable, shareable FMM setup: the expensive, request-independent part
// of an FmmEvaluator's construction, split out so it can be built once and
// evaluated against concurrently (the serving plan cache, DESIGN.md §12).
//
// A plan bundles everything that depends only on (kernel, accuracy p, root
// box size, tree depth):
//
//   * the per-level UC2E/DC2E/M2M/L2L operators and the shared M2L spectrum
//     bank (Operators) -- by far the dominant construction cost;
//   * optionally, a sealed util::TaskGraph *skeleton* of the DAG executor:
//     the topology plus (kind, node) dispatch tables, reusable by any
//     evaluator whose tree has the same structural signature.
//
// What a plan deliberately does NOT contain: the tree, the interaction
// lists, the point mirrors, the expansion arenas, or any scratch -- those
// are per-request state owned by each FmmEvaluator. Two workers evaluating
// against one plan share only immutable data, so no synchronization is
// needed beyond the shared_ptr.
//
// Exactness across depths: operators are built (or, for homogeneous
// kernels, rescaled) per level independently, so a plan built for depth D
// serves any tree of depth <= D with levels bitwise identical to a fresh
// shallower build. The evaluator therefore only checks max_depth() as an
// upper bound -- and root_half() for exact equality, since the level
// geometry scales with it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "fmm/kernel.hpp"
#include "fmm/lists.hpp"
#include "fmm/octree.hpp"
#include "fmm/operators.hpp"
#include "util/taskgraph.hpp"

namespace eroof::fmm {

/// Phase tags carried by the DAG's tasks (util::TaskGraph::tag), in the
/// evaluator's canonical phase order.
enum FmmDagTag : int {
  kDagTagUp = 0,
  kDagTagV = 1,
  kDagTagX = 2,
  kDagTagDown = 3,
  kDagTagU = 4,
  kDagTagW = 5,
};
inline constexpr int kFmmDagTagCount = 6;

/// Dispatch kind of one DAG task (which per-node body it runs). The
/// evaluator's shared runner switches on this; the skeleton stores one kind
/// and one node id per task.
enum class FmmDagKind : std::uint8_t {
  kUp,      ///< P2M/M2M + UC2E solve
  kFft,     ///< forward FFT of one node's equivalent grid
  kVHad,    ///< Hadamard accumulate + inverse FFT + scatter
  kVDense,  ///< dense M2L fallback
  kX,       ///< P2L adds
  kDown,    ///< DC2E solve + L2L pushes
  kL2p,     ///< leaf L2P outputs
  kU,       ///< leaf near-field P2P
  kW,       ///< leaf M2P
};

/// A sealed DAG structure plus its dispatch tables, valid for any tree with
/// matching tree_structure_signature(). Node ids, lists and arena slots are
/// all pure functions of that structure, so one skeleton serves every such
/// tree; evaluators adopt the topology (skipping edge build, duplicate
/// check and the Kahn pass) and dispatch through their own state.
struct FmmDagSkeleton {
  std::shared_ptr<const util::TaskGraph::Topology> topology;
  std::vector<FmmDagKind> kind;  ///< per task
  std::vector<int> node;         ///< per task
  std::uint64_t tree_signature = 0;
};

/// Structural identity of a tree: FNV-1a over node count, every node's
/// Morton key and leaf flag (in node order, which is deterministic given
/// the key set), and the depth. Two trees with equal signatures have
/// identical node indexing, interaction lists and DAG structure; point
/// counts and coordinates may differ freely.
std::uint64_t tree_structure_signature(const Octree& tree);

/// Builds the DAG skeleton for one tree (task creation order and edges
/// exactly as the evaluator's original in-place builder, so adopted graphs
/// schedule identically to locally built ones).
FmmDagSkeleton build_fmm_dag_skeleton(const Octree& tree,
                                      const InteractionLists& lists,
                                      bool use_fft_m2l);

/// The immutable shareable setup. Construction builds the operators (and
/// bumps the "fmm.operators.builds" trace counter -- the regression hook
/// proving cached plans skip the rebuild).
class FmmPlan {
 public:
  FmmPlan(std::shared_ptr<const Kernel> kernel, double root_half,
          int max_depth, FmmConfig cfg = {});

  /// Non-owning handle for a caller-owned kernel (the legacy FmmEvaluator
  /// API's lifetime contract: the kernel outlives the plan).
  static std::shared_ptr<const Kernel> borrow_kernel(const Kernel& kernel);

  /// Plan matching one concrete tree; the legacy wrapper path.
  static std::shared_ptr<FmmPlan> for_tree(std::shared_ptr<const Kernel> kernel,
                                           const Octree& tree,
                                           FmmConfig cfg = {});

  const Kernel& kernel() const { return *kernel_; }
  const std::shared_ptr<const Kernel>& kernel_ptr() const { return kernel_; }
  const FmmConfig& config() const { return ops_.config(); }
  double root_half() const { return root_half_; }
  int max_depth() const { return max_depth_; }
  const Operators& operators() const { return ops_; }

  /// Attaches the reusable DAG skeleton. Pre-publication only: call before
  /// the plan is shared with other threads (the cache's build-once slot).
  void attach_dag_skeleton(FmmDagSkeleton skeleton);
  const FmmDagSkeleton* dag_skeleton() const {
    return skeleton_ ? &*skeleton_ : nullptr;
  }

 private:
  std::shared_ptr<const Kernel> kernel_;
  double root_half_;
  int max_depth_;
  Operators ops_;
  std::optional<FmmDagSkeleton> skeleton_;
};

}  // namespace eroof::fmm
