#include "fmm/direct.hpp"

#include <cmath>

#include "util/require.hpp"

namespace eroof::fmm {

std::vector<double> direct_sum(const Kernel& kernel,
                               std::span<const Vec3> targets,
                               std::span<const Vec3> sources,
                               std::span<const double> densities) {
  EROOF_REQUIRE(sources.size() == densities.size());
  std::vector<double> phi(targets.size(), 0.0);
  // eroof: hot-begin (reference direct sum: pure kernel evaluations into a
  // preallocated output, the baseline every accuracy check compares against)
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < targets.size(); ++i) {
    double acc = 0;
    for (std::size_t j = 0; j < sources.size(); ++j)
      acc += kernel.eval(targets[i], sources[j]) * densities[j];
    phi[i] = acc;
  }
  // eroof: hot-end
  return phi;
}

double rel_l2_error(std::span<const double> a, std::span<const double> b) {
  EROOF_REQUIRE(a.size() == b.size() && !a.empty());
  double num = 0;
  double den = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - b[i]) * (a[i] - b[i]);
    den += b[i] * b[i];
  }
  EROOF_REQUIRE(den > 0);
  return std::sqrt(num / den);
}

}  // namespace eroof::fmm
