// Equivalent / check surfaces of the kernel-independent FMM.
//
// KIFMM replaces analytic multipole expansions with *equivalent densities*
// living on a discretized surface around each box (Ying, Biros & Zorin
// 2004). We use the standard cube surfaces: the boundary nodes of a p^3
// Cartesian grid, scaled to radius r box half-widths. The regular grid
// layout is what lets M2L translations become FFT convolutions.
//
//   upward   equivalent surface r = 1.05   (just outside the box)
//   upward   check      surface r = 2.95   (just inside the far-field cut)
//   downward equivalent surface r = 2.95
//   downward check      surface r = 1.05
#pragma once

#include <cstddef>
#include <vector>

#include "fmm/geometry.hpp"

namespace eroof::fmm {

inline constexpr double kRadiusInner = 1.05;  ///< equiv-up / check-down
inline constexpr double kRadiusOuter = 2.95;  ///< check-up / equiv-down

/// Number of surface points of a p-per-edge cube grid: p^3 - (p-2)^3.
std::size_t surface_point_count(int p);

/// Integer grid coordinates (in [0,p)^3) of the surface nodes, in a fixed
/// canonical order shared with the FFT grid embedding.
const std::vector<std::array<int, 3>>& surface_grid_coords(int p);

/// Surface points of `box` scaled by `radius` half-widths: the grid node
/// (i,j,k) maps to center + radius*half * (-1 + 2i/(p-1), ...).
std::vector<Vec3> surface_points(int p, const Box& box, double radius);

/// SoA template of surface-point *offsets* from a box center. All boxes of
/// one level are congruent, so a node's surface points are center + offset:
/// the template is built once per (level, radius) and shared by every node,
/// keeping the evaluation hot paths free of per-node point construction.
struct SurfaceTemplate {
  std::vector<double> x, y, z;

  std::size_t size() const { return x.size(); }

  /// Materializes `center + offsets` into caller-owned SoA arrays (each of
  /// length size()); no allocation.
  void materialize(const Vec3& center, double* ox, double* oy,
                   double* oz) const;
};

/// Offsets for a box of half-width `half` at `radius` half-widths, in the
/// canonical surface order (same order as surface_points).
SurfaceTemplate surface_template(int p, double half, double radius);

/// Grid spacing of those surface points (distance between adjacent nodes).
double surface_spacing(int p, const Box& box, double radius);

}  // namespace eroof::fmm
