#include "fmm/lists.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace eroof::fmm {
namespace {

/// Recursive classification of the subtree under `idx` (which lies inside a
/// neighbor region of leaf `b`) into U (adjacent leaves) and W (first
/// non-adjacent descendants whose parent is adjacent).
void descend_for_u_w(const Octree& tree, int b, int idx, std::vector<int>& u,
                     std::vector<int>& w) {
  const Node& bn = tree.node(b);
  const Node& n = tree.node(idx);
  if (boxes_adjacent(n.box, bn.box)) {
    if (n.leaf) {
      u.push_back(idx);
    } else {
      for (int c : n.children)
        if (c >= 0) descend_for_u_w(tree, b, c, u, w);
    }
  } else {
    // Parent was adjacent (we only descend into adjacent nodes), this node
    // is not: exactly the W-list membership condition. Use its multipole;
    // do not descend further.
    w.push_back(idx);
  }
}

}  // namespace

InteractionLists build_lists(const Octree& tree) {
  const std::size_t n = tree.nodes().size();
  InteractionLists lists;
  lists.u.resize(n);
  lists.v.resize(n);
  lists.w.resize(n);
  lists.x.resize(n);

  // --- U and W for leaves. ---
  for (const int b : tree.leaves()) {
    const Node& bn = tree.node(b);
    std::vector<int>& u = lists.u[static_cast<std::size_t>(b)];
    std::vector<int>& w = lists.w[static_cast<std::size_t>(b)];
    u.push_back(b);  // self-interactions are direct

    for (const MortonKey nk : bn.key.neighbors()) {
      const int exact = tree.find(nk);
      if (exact >= 0) {
        descend_for_u_w(tree, b, exact, u, w);
        continue;
      }
      // No node at exactly this key: either the region is empty, or a
      // coarser leaf covers it.
      const int anc = tree.find_deepest_ancestor(nk);
      if (anc < 0) continue;
      const Node& an = tree.node(anc);
      if (an.leaf && an.level() < bn.level() &&
          boxes_adjacent(an.box, bn.box))
        u.push_back(anc);
      // `anc` internal means the specific sub-region nk holds no points.
    }

    // Coarser adjacent leaves are reachable through several neighbor keys.
    std::sort(u.begin(), u.end());
    u.erase(std::unique(u.begin(), u.end()), u.end());
    std::sort(w.begin(), w.end());
    w.erase(std::unique(w.begin(), w.end()), w.end());
  }

  // --- V for every node with a parent at level >= 1. ---
  for (std::size_t bi = 0; bi < n; ++bi) {
    const Node& bn = tree.node(static_cast<int>(bi));
    if (bn.parent < 0) continue;
    const Node& pn = tree.node(bn.parent);
    std::vector<int>& v = lists.v[bi];
    for (const MortonKey pk : pn.key.neighbors()) {
      const int colleague = tree.find(pk);
      if (colleague < 0) continue;
      for (const int c : tree.node(colleague).children) {
        if (c < 0) continue;
        if (!boxes_adjacent(tree.node(c).box, bn.box)) v.push_back(c);
      }
    }
  }

  // --- X is the transpose of W. ---
  for (const int a : tree.leaves())
    for (const int b : lists.w[static_cast<std::size_t>(a)])
      lists.x[static_cast<std::size_t>(b)].push_back(a);

  return lists;
}

}  // namespace eroof::fmm
