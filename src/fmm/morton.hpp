// Morton (Z-order) keys for octree boxes.
//
// A key packs (level, interleaved x/y/z cell coordinates). Keys at the same
// level sort in Z-order; parent/child/neighbor arithmetic is bit twiddling.
// Up to 20 levels (60 coordinate bits) fit a 64-bit key with 5 level bits.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace eroof::fmm {

/// Packed Morton key.
class MortonKey {
 public:
  static constexpr int kMaxLevel = 20;

  MortonKey() = default;

  /// From integer cell coordinates at `level` (each in [0, 2^level)).
  static MortonKey from_coords(int level, std::uint32_t x, std::uint32_t y,
                               std::uint32_t z);

  /// From a point in the unit cube [0,1)^3 at `level`.
  static MortonKey from_point(int level, double x, double y, double z);

  int level() const { return static_cast<int>(bits_ >> 60); }
  std::array<std::uint32_t, 3> coords() const;

  MortonKey parent() const;
  MortonKey child(unsigned octant) const;

  /// The octant index of this box within its parent (0..7).
  unsigned octant_in_parent() const;

  /// All existing same-level boxes within one cell in each direction
  /// (up to 26; excludes self, clips at the domain boundary).
  std::vector<MortonKey> neighbors() const;

  friend bool operator==(MortonKey a, MortonKey b) {
    return a.bits_ == b.bits_;
  }
  friend auto operator<=>(MortonKey a, MortonKey b) {
    return a.bits_ <=> b.bits_;
  }

  std::uint64_t raw() const { return bits_; }

 private:
  // bits 60..63: level; bits 0..59: interleaved coordinates (x lowest).
  std::uint64_t bits_ = 0;
};

/// Expands the low 20 bits of v so there are two zero bits between each.
std::uint64_t interleave3(std::uint32_t v);
/// Inverse of interleave3.
std::uint32_t deinterleave3(std::uint64_t v);

}  // namespace eroof::fmm
