// The kernel-independent FMM evaluator (paper Section III-B).
//
// Computes f(x_i) = sum_j K(x_i, y_j) s(y_j) over one point set in the six
// phases the paper profiles:
//
//   UP    P2M at leaves, M2M up the tree (upward equivalent densities)
//   U     direct P2P over adjacent leaves        (compute bound)
//   V     FFT-accelerated M2L translations       (memory bound)
//   W     M2P: W-node equivalent density -> leaf targets
//   X     P2L: X-node sources -> downward check surfaces
//   DOWN  DC2E solves + L2L down the tree + L2P at leaves
//
// O(N) total work with accuracy controlled by the surface order p.
//
// Performance architecture: per-node expansion state lives in contiguous
// per-phase arenas indexed by node slot; points are mirrored once into SoA
// coordinate arrays; surface points come from per-level templates
// (center + offset); and every phase loop runs allocation-free against
// per-thread Workspace scratch, with kernel evaluation batched through
// Kernel::eval_batch (one virtual call per tile, simd inner loops).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "fmm/kernel.hpp"
#include "fmm/lists.hpp"
#include "fmm/octree.hpp"
#include "fmm/operators.hpp"

namespace eroof::fmm {

/// Structural work tallies from one evaluation, per phase. These are the
/// ground truth the GPU execution profile is cross-checked against.
struct FmmStats {
  struct Phase {
    double kernel_evals = 0;  ///< pointwise K(x,y) evaluations
    double pair_count = 0;    ///< list pairs processed
    double ffts = 0;          ///< forward + inverse grid FFTs
    double hadamard_cmuls = 0;  ///< complex multiplies in V-phase products
    double solve_matvecs = 0;   ///< n_surf^2-sized dense matvec applications
  };
  Phase up, u, v, w, x, down;
};

/// The evaluator. Construction builds the tree, the interaction lists and
/// the per-level operators; `evaluate` can then be called repeatedly with
/// different source densities (e.g. inside a time-stepping loop) -- repeat
/// calls reuse all arenas and scratch without reallocating.
class FmmEvaluator {
 public:
  FmmEvaluator(const Kernel& kernel, std::span<const Vec3> points,
               Octree::Params tree_params = {}, FmmConfig cfg = {});

  /// Potentials at every point for the given densities; both vectors are in
  /// the caller's original point order. Self-interactions excluded.
  ///
  /// When a trace::TraceSession is installed, each phase emits exactly one
  /// span (category "fmm.phase", names UP/U/V/W/X/DOWN) carrying its
  /// FmmStats tallies as args, plus registry totals "fmm.<phase>.<tally>",
  /// all nested under one "evaluate" span (category "fmm").
  std::vector<double> evaluate(std::span<const double> densities);

  const Octree& tree() const { return tree_; }
  const InteractionLists& lists() const { return lists_; }
  const Operators& operators() const { return ops_; }
  const Kernel& kernel() const { return kernel_; }

  /// Tallies of the most recent evaluate() call.
  const FmmStats& stats() const { return stats_; }

  /// One-shot evaluation with *distinct* target and source sets (the
  /// general form of the paper's eq. 10). Exploits linearity: targets
  /// enter the tree as zero-density sources, so they steer the spatial
  /// decomposition but contribute nothing; their potentials are read back
  /// out. Self-interactions (a target coinciding with a source) are
  /// excluded, as in direct_sum.
  static std::vector<double> evaluate_at(const Kernel& kernel,
                                         std::span<const Vec3> targets,
                                         std::span<const Vec3> sources,
                                         std::span<const double> densities,
                                         Octree::Params tree_params = {},
                                         FmmConfig cfg = {});

 private:
  /// Per-thread scratch so phase loops never touch the heap: check/value
  /// surface buffers, materialized SoA surface points, and the V-phase FFT
  /// grid + split-complex accumulators.
  struct Workspace {
    std::vector<double> check, vals;
    std::vector<double> tx, ty, tz;  // target-side surface points
    std::vector<double> sx, sy, sz;  // source-side surface points
    std::vector<fft::cplx> grid;
    std::vector<double> acc_re, acc_im;
  };

  void upward_pass(std::span<const double> dens);
  void v_phase();
  void x_phase(std::span<const double> dens);
  void downward_pass();
  void l2p_pass(std::span<double> phi);
  void u_pass(std::span<const double> dens, std::span<double> phi);
  void w_pass(std::span<double> phi);

  void ensure_workspaces();
  Workspace& workspace();

  /// Arena views; `b` must be a node at level >= 2 (slot_[b] >= 0).
  std::span<double> up_equiv(int b) {
    return {up_equiv_.data() +
                static_cast<std::size_t>(slot_[static_cast<std::size_t>(b)]) *
                    ops_.n_surf(),
            ops_.n_surf()};
  }
  std::span<double> down_check(int b) {
    return {down_check_.data() +
                static_cast<std::size_t>(slot_[static_cast<std::size_t>(b)]) *
                    ops_.n_surf(),
            ops_.n_surf()};
  }
  std::span<double> down_equiv(int b) {
    return {down_equiv_.data() +
                static_cast<std::size_t>(slot_[static_cast<std::size_t>(b)]) *
                    ops_.n_surf(),
            ops_.n_surf()};
  }

  /// SoA view of the tree-order point range [begin, end).
  PointBlock point_block(std::uint32_t begin, std::uint32_t end) const {
    return {px_.data() + begin, py_.data() + begin, pz_.data() + begin,
            end - begin};
  }

  const Kernel& kernel_;
  Octree tree_;
  InteractionLists lists_;
  Operators ops_;
  FmmStats stats_;

  // SoA mirror of the tree-order points (built once; the tree is fixed).
  std::vector<double> px_, py_, pz_;

  // Contiguous per-phase arenas: one n_surf slot per node at level >= 2
  // (shallower nodes carry no expansions). slot_[node] is the arena slot,
  // -1 for nodes without one.
  std::vector<int> slot_;
  std::size_t n_slots_ = 0;
  std::vector<double> up_equiv_, down_check_, down_equiv_;

  // Nodes with non-empty X lists (most have none; the X phase iterates
  // only these).
  std::vector<int> x_targets_;

  // V-phase scratch: per-level node positions and split-complex spectra of
  // the widest level, reused across levels and calls.
  std::vector<std::size_t> pos_in_level_;
  std::vector<double> spec_re_, spec_im_;

  std::vector<Workspace> workspaces_;
};

}  // namespace eroof::fmm
