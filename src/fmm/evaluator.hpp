// The kernel-independent FMM evaluator (paper Section III-B).
//
// Computes f(x_i) = sum_j K(x_i, y_j) s(y_j) over one point set in the six
// phases the paper profiles:
//
//   UP    P2M at leaves, M2M up the tree (upward equivalent densities)
//   U     direct P2P over adjacent leaves        (compute bound)
//   V     FFT-accelerated M2L translations       (memory bound)
//   W     M2P: W-node equivalent density -> leaf targets
//   X     P2L: X-node sources -> downward check surfaces
//   DOWN  DC2E solves + L2L down the tree + L2P at leaves
//
// O(N) total work with accuracy controlled by the surface order p.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "fmm/kernel.hpp"
#include "fmm/lists.hpp"
#include "fmm/octree.hpp"
#include "fmm/operators.hpp"

namespace eroof::fmm {

/// Structural work tallies from one evaluation, per phase. These are the
/// ground truth the GPU execution profile is cross-checked against.
struct FmmStats {
  struct Phase {
    double kernel_evals = 0;  ///< pointwise K(x,y) evaluations
    double pair_count = 0;    ///< list pairs processed
    double ffts = 0;          ///< forward + inverse grid FFTs
    double hadamard_cmuls = 0;  ///< complex multiplies in V-phase products
    double solve_matvecs = 0;   ///< n_surf^2-sized dense matvec applications
  };
  Phase up, u, v, w, x, down;
};

/// The evaluator. Construction builds the tree, the interaction lists and
/// the per-level operators; `evaluate` can then be called repeatedly with
/// different source densities (e.g. inside a time-stepping loop).
class FmmEvaluator {
 public:
  FmmEvaluator(const Kernel& kernel, std::span<const Vec3> points,
               Octree::Params tree_params = {}, FmmConfig cfg = {});

  /// Potentials at every point for the given densities; both vectors are in
  /// the caller's original point order. Self-interactions excluded.
  ///
  /// When a trace::TraceSession is installed, each phase emits exactly one
  /// span (category "fmm.phase", names UP/U/V/W/X/DOWN) carrying its
  /// FmmStats tallies as args, plus registry totals "fmm.<phase>.<tally>",
  /// all nested under one "evaluate" span (category "fmm").
  std::vector<double> evaluate(std::span<const double> densities);

  const Octree& tree() const { return tree_; }
  const InteractionLists& lists() const { return lists_; }
  const Operators& operators() const { return ops_; }
  const Kernel& kernel() const { return kernel_; }

  /// Tallies of the most recent evaluate() call.
  const FmmStats& stats() const { return stats_; }

  /// One-shot evaluation with *distinct* target and source sets (the
  /// general form of the paper's eq. 10). Exploits linearity: targets
  /// enter the tree as zero-density sources, so they steer the spatial
  /// decomposition but contribute nothing; their potentials are read back
  /// out. Self-interactions (a target coinciding with a source) are
  /// excluded, as in direct_sum.
  static std::vector<double> evaluate_at(const Kernel& kernel,
                                         std::span<const Vec3> targets,
                                         std::span<const Vec3> sources,
                                         std::span<const double> densities,
                                         Octree::Params tree_params = {},
                                         FmmConfig cfg = {});

 private:
  void upward_pass(std::span<const double> dens);
  void v_phase();
  void x_phase(std::span<const double> dens);
  void downward_pass();
  void l2p_pass(std::span<double> phi);
  void u_pass(std::span<const double> dens, std::span<double> phi);
  void w_pass(std::span<double> phi);

  const Kernel& kernel_;
  Octree tree_;
  InteractionLists lists_;
  Operators ops_;
  FmmStats stats_;

  // Per-node state for the evaluation in flight.
  std::vector<std::vector<double>> up_equiv_;
  std::vector<std::vector<double>> down_check_;
  std::vector<std::vector<double>> down_equiv_;
};

}  // namespace eroof::fmm
