// The kernel-independent FMM evaluator (paper Section III-B).
//
// Computes f(x_i) = sum_j K(x_i, y_j) s(y_j) over one point set in the six
// phases the paper profiles:
//
//   UP    P2M at leaves, M2M up the tree (upward equivalent densities)
//   U     direct P2P over adjacent leaves        (compute bound)
//   V     FFT-accelerated M2L translations       (memory bound)
//   W     M2P: W-node equivalent density -> leaf targets
//   X     P2L: X-node sources -> downward check surfaces
//   DOWN  DC2E solves + L2L down the tree + L2P at leaves
//
// O(N) total work with accuracy controlled by the surface order p.
//
// Performance architecture: per-node expansion state lives in contiguous
// per-phase arenas indexed by node slot; points are mirrored once into SoA
// coordinate arrays; surface points come from per-level templates
// (center + offset); and every phase loop runs allocation-free against
// per-thread Workspace scratch, with kernel evaluation batched through
// Kernel::eval_batch (one virtual call per tile, simd inner loops).
//
// Two executors share those per-node bodies (DESIGN.md section 11):
//
//   kPhases  six bulk-synchronous sweeps with a barrier between phases
//            (the paper's execution model, and the reference semantics);
//   kDag     a dependency-counting task DAG over the same per-node bodies
//            (util::TaskGraph), with edges M2M-parent-after-children,
//            M2L-after-sources'-upward and L2L/L2P-after-M2L+X, so
//            independent subtrees overlap instead of idling at barriers.
//
// Both paths apply bitwise-identical floating-point operation sequences to
// every output element -- the DAG's edges totally order all writers of each
// arena cell in exactly the phase order -- so results, stats() and trace
// counter totals are identical across executors and thread counts.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "fmm/kernel.hpp"
#include "fmm/lists.hpp"
#include "fmm/octree.hpp"
#include "fmm/operators.hpp"
#include "fmm/plan.hpp"
#include "util/taskgraph.hpp"

namespace eroof::fmm {

/// Structural work tallies from one evaluation, per phase. These are the
/// ground truth the GPU execution profile is cross-checked against.
struct FmmStats {
  struct Phase {
    double kernel_evals = 0;  ///< pointwise K(x,y) evaluations
    double pair_count = 0;    ///< list pairs processed
    double ffts = 0;          ///< forward + inverse grid FFTs
    double hadamard_cmuls = 0;  ///< complex multiplies in V-phase products
    double solve_matvecs = 0;   ///< n_surf^2-sized dense matvec applications
  };
  Phase up, u, v, w, x, down;
};

/// Which execution engine evaluate() drives the six phases with.
enum class FmmExecutor {
  kPhases,  ///< bulk-synchronous phase sweeps (reference semantics)
  kDag,     ///< dependency-counting task DAG (util::TaskGraph)
};

/// The evaluator. Construction builds the tree and the interaction lists
/// (per-request state) and either builds or shares an FmmPlan (the
/// operators and optional DAG skeleton); `evaluate` can then be called
/// repeatedly with different source densities (e.g. inside a time-stepping
/// loop) -- repeat calls reuse all arenas and scratch without reallocating.
class FmmEvaluator {
 public:
  /// Legacy API: builds a private plan for this tree (kernel must outlive
  /// the evaluator). A thin wrapper over the plan-sharing constructor.
  FmmEvaluator(const Kernel& kernel, std::span<const Vec3> points,
               Octree::Params tree_params = {}, FmmConfig cfg = {});

  /// Shares an existing (possibly cached) plan: no operator construction
  /// happens here. The tree must match the plan's geometry -- domain
  /// half-width bitwise equal, depth <= plan depth -- and results are
  /// bitwise identical to a fresh evaluator built for the same tree.
  /// Multiple evaluators may evaluate against one plan concurrently.
  FmmEvaluator(std::shared_ptr<const FmmPlan> plan, Octree tree);

  /// Same, building the tree here from `points`.
  FmmEvaluator(std::shared_ptr<const FmmPlan> plan,
               std::span<const Vec3> points, Octree::Params tree_params = {});

  /// Potentials at every point for the given densities; both vectors are in
  /// the caller's original point order. Self-interactions excluded.
  ///
  /// When a trace::TraceSession is installed, each phase emits exactly one
  /// span (category "fmm.phase", names UP/U/V/W/X/DOWN) carrying its
  /// FmmStats tallies as args, plus registry totals "fmm.<phase>.<tally>",
  /// all nested under one "evaluate" span (category "fmm"). Under the DAG
  /// executor the phase spans report per-phase *busy* time (the summed task
  /// durations of that phase) since phases interleave.
  std::vector<double> evaluate(std::span<const double> densities);

  /// evaluate() without the return-value allocation: potentials are written
  /// into `out` (caller order, sized like `densities`). After the first
  /// call -- which sizes internal buffers, per-thread workspaces, and (under
  /// kDag) the replayable graph -- repeat calls perform no heap allocation,
  /// which is what lets a time-stepping session run steady-state
  /// zero-allocation. Bitwise identical to evaluate().
  void evaluate_into(std::span<const double> densities,
                     std::span<double> out);

  /// Re-bins moved positions into the existing tree via Octree::try_refit.
  /// On success (structure unchanged) the interaction lists, node slots,
  /// arenas, spectra banks, and DAG skeleton -- all purely structural -- are
  /// kept as-is; only the SoA coordinate mirror and the occupancy-dependent
  /// structural stats are refreshed, and subsequent evaluations are bitwise
  /// identical to a fresh evaluator built from `new_points`. On false the
  /// evaluator is unchanged (caller rebuilds). Allocation-free after the
  /// tree's first refit.
  bool try_refit(std::span<const Vec3> new_points);

  /// Selects the execution engine for subsequent evaluate() calls. The DAG
  /// executor's prebuilt graph arena is constructed on first use (once) and
  /// replayed allocation-free afterwards.
  void set_executor(FmmExecutor e) { executor_ = e; }
  FmmExecutor executor() const { return executor_; }

  /// The DAG executor's task graph (built on first access). Exposed for
  /// structural tests: tags, dependency counts, topology.
  const util::TaskGraph& task_graph();

  /// Test instrumentation: hooks forwarded to every DAG replay (e.g. seeded
  /// delay injection that perturbs the schedule). Empty hooks cost nothing.
  void set_dag_hooks(util::TaskGraph::RunHooks hooks) {
    dag_hooks_ = std::move(hooks);
  }

  const Octree& tree() const { return tree_; }
  const InteractionLists& lists() const { return lists_; }
  const Operators& operators() const { return plan_->operators(); }
  const Kernel& kernel() const { return plan_->kernel(); }
  const std::shared_ptr<const FmmPlan>& plan() const { return plan_; }

  /// Tallies of the most recent evaluate() call. The tallies are purely
  /// structural (tree + lists + operators), so they are computed once at
  /// construction by one serial pass in canonical phase order -- the
  /// explicit commit order that keeps stats() bitwise identical across
  /// executors and thread counts -- and committed wholesale per evaluate().
  const FmmStats& stats() const { return stats_; }

  /// One-shot evaluation with *distinct* target and source sets (the
  /// general form of the paper's eq. 10). Exploits linearity: targets
  /// enter the tree as zero-density sources, so they steer the spatial
  /// decomposition but contribute nothing; their potentials are read back
  /// out. Self-interactions (a target coinciding with a source) are
  /// excluded, as in direct_sum.
  static std::vector<double> evaluate_at(const Kernel& kernel,
                                         std::span<const Vec3> targets,
                                         std::span<const Vec3> sources,
                                         std::span<const double> densities,
                                         Octree::Params tree_params = {},
                                         FmmConfig cfg = {});

 private:
  /// Per-thread scratch so phase loops never touch the heap: check/value
  /// surface buffers, materialized SoA surface points, and the V-phase FFT
  /// grid + split-complex accumulators.
  struct Workspace {
    std::vector<double> check, vals;
    std::vector<double> tx, ty, tz;  // target-side surface points
    std::vector<double> sx, sy, sz;  // source-side surface points
    std::vector<fft::cplx> grid;
    std::vector<double> acc_re, acc_im;
  };

  // -- per-node phase bodies, shared verbatim by both executors ----------
  void node_up(int b, const double* dens);
  void node_fft_forward(int b, double* qr, double* qi);
  void node_v_hadamard(int b, const double* spec_re, const double* spec_im,
                       const std::size_t* spec_pos);
  void node_v_dense(int b);
  void node_x(int b, const double* dens);
  void node_down(int b);
  void leaf_l2p(int b, double* phi);
  void leaf_u(int b, const double* dens, double* phi);
  void leaf_w(int b, double* phi);

  // -- bulk-synchronous executor ----------------------------------------
  void evaluate_phases(std::span<const double> dens, std::span<double> phi);
  void upward_pass(std::span<const double> dens);
  void v_phase();
  void x_phase(std::span<const double> dens);
  void downward_pass();
  void l2p_pass(std::span<double> phi);
  void u_pass(std::span<const double> dens, std::span<double> phi);
  void w_pass(std::span<double> phi);

  // -- DAG executor -------------------------------------------------------
  void evaluate_dag(std::span<const double> dens, std::span<double> phi);
  void build_dag();
  /// The shared runner: dispatches task `t` through the skeleton's
  /// (kind, node) tables to the per-node bodies, binding the densities /
  /// potentials of the current evaluate() via dag_dens_/dag_phi_.
  void run_dag_task(int t);
  void dag_fft(int b);
  void dag_vhad(int b);

  void init();  ///< common construction tail of all constructors

  /// The canonical serial tally pass (see stats()).
  FmmStats compute_structural_stats() const;

  void ensure_workspaces();
  Workspace& workspace();

  /// Shorthands for the plan's shared immutable pieces.
  const Operators& ops() const { return plan_->operators(); }
  const Kernel& kern() const { return plan_->kernel(); }

  /// Arena views; `b` must be a node at level >= 2 (slot_[b] >= 0).
  std::span<double> up_equiv(int b) {
    return {up_equiv_.data() +
                static_cast<std::size_t>(slot_[static_cast<std::size_t>(b)]) *
                    ops().n_surf(),
            ops().n_surf()};
  }
  std::span<double> down_check(int b) {
    return {down_check_.data() +
                static_cast<std::size_t>(slot_[static_cast<std::size_t>(b)]) *
                    ops().n_surf(),
            ops().n_surf()};
  }
  std::span<double> down_equiv(int b) {
    return {down_equiv_.data() +
                static_cast<std::size_t>(slot_[static_cast<std::size_t>(b)]) *
                    ops().n_surf(),
            ops().n_surf()};
  }

  /// SoA view of the tree-order point range [begin, end).
  PointBlock point_block(std::uint32_t begin, std::uint32_t end) const {
    return {px_.data() + begin, py_.data() + begin, pz_.data() + begin,
            end - begin};
  }

  // The shared immutable setup (operators, config, optional DAG skeleton)
  // and the per-request tree + lists. plan_ is set by every constructor
  // before init() runs.
  std::shared_ptr<const FmmPlan> plan_;
  Octree tree_;
  InteractionLists lists_;
  FmmStats stats_;
  FmmStats structural_stats_;

  // SoA mirror of the tree-order points (rebuilt in place by try_refit).
  std::vector<double> px_, py_, pz_;

  // evaluate_into's tree-order density/potential staging, sized on first
  // call and reused so steady-state evaluation never touches the heap.
  std::vector<double> eval_dens_, eval_phi_;

  // Contiguous per-phase arenas: one n_surf slot per node at level >= 2
  // (shallower nodes carry no expansions). slot_[node] is the arena slot,
  // -1 for nodes without one.
  std::vector<int> slot_;
  std::size_t n_slots_ = 0;
  std::vector<double> up_equiv_, down_check_, down_equiv_;

  // Nodes with non-empty X lists (most have none; the X phase iterates
  // only these).
  std::vector<int> x_targets_;

  // V-phase scratch of the bulk-synchronous path: per-level node positions
  // and split-complex spectra of the widest level, reused across levels and
  // calls.
  std::vector<std::size_t> pos_in_level_;
  std::vector<double> spec_re_, spec_im_;

  std::vector<Workspace> workspaces_;

  // -- DAG executor state --------------------------------------------------
  FmmExecutor executor_ = FmmExecutor::kPhases;
  // The runnable graph adopts a topology either from the plan's skeleton
  // (structure-validated by signature) or from local_skeleton_, built here
  // when the plan carries none that fits. dag_kind_/dag_node_ alias the
  // owning skeleton's dispatch tables.
  std::unique_ptr<util::TaskGraph> dag_;
  std::unique_ptr<FmmDagSkeleton> local_skeleton_;
  const FmmDagKind* dag_kind_ = nullptr;
  const int* dag_node_ = nullptr;
  util::TaskGraph::RunHooks dag_hooks_;
  bool dag_built_ = false;
  const double* dag_dens_ = nullptr;  // valid only inside evaluate_dag()
  double* dag_phi_ = nullptr;         // valid only inside evaluate_dag()
  // Per-*slot* spectrum planes: unlike the per-level banks above, every
  // node keeps its own plane because the DAG overlaps levels.
  std::vector<double> dag_spec_re_, dag_spec_im_;
  std::vector<std::size_t> dag_spec_pos_;  // node -> plane index (its slot)
  // Per-thread, per-phase busy time (us) of the last DAG run; populated
  // only while a trace session is installed.
  bool dag_timing_ = false;
  std::vector<std::array<double, kFmmDagTagCount>> dag_busy_us_;
};

}  // namespace eroof::fmm
