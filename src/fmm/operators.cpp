#include "fmm/operators.hpp"

#include <cmath>

#include "fmm/morton.hpp"

#include "util/require.hpp"

namespace eroof::fmm {
namespace {

constexpr int kMinOperatorLevel = 2;  // no V lists / expansions above this

}  // namespace

Operators::Operators(const Kernel& kernel, double root_half, int max_level,
                     FmmConfig cfg)
    : cfg_(cfg),
      plan_(static_cast<std::size_t>(2 * cfg.p),
            static_cast<std::size_t>(2 * cfg.p),
            static_cast<std::size_t>(2 * cfg.p)) {
  EROOF_REQUIRE(cfg_.p >= 3 && cfg_.p <= 16);
  EROOF_REQUIRE(cfg_.tikhonov_eps > 0);
  EROOF_REQUIRE(max_level >= 0 && max_level <= MortonKey::kMaxLevel);

  const std::size_t m = grid_m();
  surf_to_grid_.reserve(n_surf());
  for (const auto& [i, j, k] : surface_grid_coords(cfg_.p))
    surf_to_grid_.push_back((static_cast<std::size_t>(i) * m +
                             static_cast<std::size_t>(j)) *
                                m +
                            static_cast<std::size_t>(k));

  levels_.resize(static_cast<std::size_t>(max_level) + 1);
  for (int l = kMinOperatorLevel; l <= max_level; ++l)
    build_level(kernel, l, root_half);
}

const LevelOperators& Operators::level(int l) const {
  EROOF_REQUIRE(l >= kMinOperatorLevel &&
                static_cast<std::size_t>(l) < levels_.size());
  return levels_[static_cast<std::size_t>(l)];
}

std::optional<std::size_t> Operators::rel_index(int dx, int dy, int dz) {
  if (dx < -3 || dx > 3 || dy < -3 || dy > 3 || dz < -3 || dz > 3)
    return std::nullopt;
  if (std::abs(dx) <= 1 && std::abs(dy) <= 1 && std::abs(dz) <= 1)
    return std::nullopt;  // near field: handled by U, never in V
  return static_cast<std::size_t>((dx + 3) * 49 + (dy + 3) * 7 + (dz + 3));
}

void Operators::embed(std::span<const double> surf_values,
                      std::span<fft::cplx> grid) const {
  EROOF_REQUIRE(surf_values.size() == n_surf() && grid.size() == grid_size());
  std::fill(grid.begin(), grid.end(), fft::cplx{0, 0});
  for (std::size_t s = 0; s < surf_values.size(); ++s)
    grid[surf_to_grid_[s]] = fft::cplx{surf_values[s], 0};
}

void Operators::extract(std::span<const fft::cplx> grid,
                        std::span<double> surf_values) const {
  EROOF_REQUIRE(surf_values.size() == n_surf() && grid.size() == grid_size());
  for (std::size_t s = 0; s < surf_values.size(); ++s)
    surf_values[s] = grid[surf_to_grid_[s]].real();
}

void Operators::build_level(const Kernel& kernel, int l, double root_half) {
  LevelOperators& ops = levels_[static_cast<std::size_t>(l)];
  const double h = root_half / std::exp2(l);
  const Box box{{0, 0, 0}, h};

  // Equivalent-density solves. The check-to-equivalent matrices are the
  // ill-conditioned heart of KIFMM; Tikhonov keeps the solve stable while
  // the regularization error stays below the surface-discretization error.
  const auto up_equiv = surface_points(cfg_.p, box, kRadiusInner);
  const auto up_check = surface_points(cfg_.p, box, kRadiusOuter);
  ops.uc2e = la::pinv_tikhonov(kernel.matrix(up_check, up_equiv),
                               cfg_.tikhonov_eps);

  const auto down_check = surface_points(cfg_.p, box, kRadiusInner);
  const auto down_equiv = surface_points(cfg_.p, box, kRadiusOuter);
  ops.dc2e = la::pinv_tikhonov(kernel.matrix(down_check, down_equiv),
                               cfg_.tikhonov_eps);

  // M2M / L2L per child octant (children of a level-l box live at l+1).
  for (unsigned o = 0; o < 8; ++o) {
    const Box child = box.child(o);
    const auto child_up_equiv = surface_points(cfg_.p, child, kRadiusInner);
    ops.m2m[o] = kernel.matrix(up_check, child_up_equiv);
    const auto child_down_check = surface_points(cfg_.p, child, kRadiusInner);
    ops.l2l[o] = kernel.matrix(child_down_check, down_equiv);
  }

  // FFT'd M2L kernel tensors, one per admissible relative offset.
  if (!cfg_.use_fft_m2l) return;
  const std::size_t m = grid_m();
  const double spacing = surface_spacing(cfg_.p, box, kRadiusInner);
  ops.m2l_fft.assign(343, {});
  const Vec3 origin{0, 0, 0};
  for (int dx = -3; dx <= 3; ++dx) {
    for (int dy = -3; dy <= 3; ++dy) {
      for (int dz = -3; dz <= 3; ++dz) {
        const auto rel = rel_index(dx, dy, dz);
        if (!rel) continue;
        // T[d] = K(target - source) at displacement
        // (box-center delta) + spacing * d, d in [-(p-1), p-1]^3, embedded
        // circularly in the m^3 grid.
        std::vector<fft::cplx> t(grid_size(), fft::cplx{0, 0});
        const Vec3 center_delta{dx * 2.0 * h, dy * 2.0 * h, dz * 2.0 * h};
        const auto wrap = [m](int d) {
          return static_cast<std::size_t>(d < 0 ? d + static_cast<int>(m) : d);
        };
        const int pm1 = cfg_.p - 1;
        for (int a = -pm1; a <= pm1; ++a)
          for (int b = -pm1; b <= pm1; ++b)
            for (int c = -pm1; c <= pm1; ++c) {
              const Vec3 displacement = center_delta +
                                        Vec3{spacing * a, spacing * b,
                                             spacing * c};
              t[(wrap(a) * m + wrap(b)) * m + wrap(c)] =
                  fft::cplx{kernel.eval(displacement, origin), 0};
            }
        plan_.forward(t);
        ops.m2l_fft[*rel] = std::move(t);
      }
    }
  }
}

}  // namespace eroof::fmm
