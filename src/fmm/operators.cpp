#include "fmm/operators.hpp"

#include <cmath>

#include "fmm/morton.hpp"

#include "trace/trace.hpp"
#include "util/require.hpp"

namespace eroof::fmm {
namespace {

constexpr int kMinOperatorLevel = 2;  // no V lists / expansions above this

la::Matrix scaled(const la::Matrix& m, double s) {
  la::Matrix out = m;
  out *= s;
  return out;
}

}  // namespace

Operators::Operators(const Kernel& kernel, double root_half, int max_level,
                     FmmConfig cfg)
    : cfg_(cfg),
      plan_(static_cast<std::size_t>(2 * cfg.p),
            static_cast<std::size_t>(2 * cfg.p),
            static_cast<std::size_t>(2 * cfg.p)) {
  EROOF_REQUIRE(cfg_.p >= 3 && cfg_.p <= 16);
  EROOF_REQUIRE(cfg_.tikhonov_eps > 0);
  EROOF_REQUIRE(max_level >= 0 && max_level <= MortonKey::kMaxLevel);

  const std::size_t m = grid_m();
  surf_to_grid_.reserve(n_surf());
  for (const auto& [i, j, k] : surface_grid_coords(cfg_.p))
    surf_to_grid_.push_back((static_cast<std::size_t>(i) * m +
                             static_cast<std::size_t>(j)) *
                                m +
                            static_cast<std::size_t>(k));

  // Setup-work witness: tests and the serving plan cache count operator
  // constructions through the trace registry to prove sharing works.
  trace::counter_add("fmm.operators.builds", 1.0);

  levels_.resize(static_cast<std::size_t>(max_level) + 1);
  if (max_level < kMinOperatorLevel) return;

  // Homogeneous kernels get one full build at the reference level; deeper
  // levels are exact rescalings (all surface geometry scales linearly with
  // the box half-width, so every kernel matrix picks up the same factor,
  // and the FFT is linear, so the M2L bank is shared through a scalar).
  double degree = 0;
  const bool homogeneous = kernel.homogeneous(&degree);
  build_level(kernel, kMinOperatorLevel, root_half);
  for (int l = kMinOperatorLevel + 1; l <= max_level; ++l) {
    if (homogeneous)
      rescale_level(l, kMinOperatorLevel, degree);
    else
      build_level(kernel, l, root_half);
  }
}

const LevelOperators& Operators::level(int l) const {
  EROOF_REQUIRE(l >= kMinOperatorLevel &&
                static_cast<std::size_t>(l) < levels_.size());
  return levels_[static_cast<std::size_t>(l)];
}

std::optional<std::size_t> Operators::rel_index(int dx, int dy, int dz) {
  if (dx < -3 || dx > 3 || dy < -3 || dy > 3 || dz < -3 || dz > 3)
    return std::nullopt;
  if (std::abs(dx) <= 1 && std::abs(dy) <= 1 && std::abs(dz) <= 1)
    return std::nullopt;  // near field: handled by U, never in V
  return static_cast<std::size_t>((dx + 3) * 49 + (dy + 3) * 7 + (dz + 3));
}

std::vector<fft::cplx> Operators::m2l_spectrum(int l, std::size_t rel) const {
  const LevelOperators& ops = level(l);
  EROOF_REQUIRE(rel < 343);
  if (!ops.m2l) return {};
  const std::size_t g = grid_size();
  const double* re = ops.m2l->re.data() + rel * g;
  const double* im = ops.m2l->im.data() + rel * g;
  bool nonzero = false;
  for (std::size_t k = 0; k < g && !nonzero; ++k)
    nonzero = re[k] != 0.0 || im[k] != 0.0;
  if (!nonzero) return {};  // near-field slot, never built
  std::vector<fft::cplx> out(g);
  for (std::size_t k = 0; k < g; ++k)
    out[k] = fft::cplx{ops.m2l_scale * re[k], ops.m2l_scale * im[k]};
  return out;
}

void Operators::embed(std::span<const double> surf_values,
                      std::span<fft::cplx> grid) const {
  EROOF_REQUIRE(surf_values.size() == n_surf() && grid.size() == grid_size());
  std::fill(grid.begin(), grid.end(), fft::cplx{0, 0});
  for (std::size_t s = 0; s < surf_values.size(); ++s)
    grid[surf_to_grid_[s]] = fft::cplx{surf_values[s], 0};
}

void Operators::extract(std::span<const fft::cplx> grid,
                        std::span<double> surf_values) const {
  EROOF_REQUIRE(surf_values.size() == n_surf() && grid.size() == grid_size());
  for (std::size_t s = 0; s < surf_values.size(); ++s)
    surf_values[s] = grid[surf_to_grid_[s]].real();
}

std::shared_ptr<M2lBank> Operators::build_m2l_bank(const Kernel& kernel,
                                                   double h) {
  const std::size_t m = grid_m();
  const std::size_t g = grid_size();
  const Box box{{0, 0, 0}, h};
  const double spacing = surface_spacing(cfg_.p, box, kRadiusInner);
  auto bank = std::make_shared<M2lBank>();
  bank->re.assign(343 * g, 0.0);
  bank->im.assign(343 * g, 0.0);
  const Vec3 origin{0, 0, 0};

  // Each admissible offset builds its kernel tensor and FFTs it into its own
  // bank plane: iterations are independent, and Plan3::forward is const and
  // re-entrant, so the loop parallelizes cleanly (this is the dominant setup
  // cost for non-homogeneous kernels, which rebuild per level).
  // eroof: cold (operator setup: each offset builds and FFTs its kernel
  // tensor into the bank; a per-plan cost, amortized across evaluates)
#pragma omp parallel for schedule(dynamic)
  for (int flat = 0; flat < 343; ++flat) {
    const int dx = flat / 49 - 3;
    const int dy = (flat / 7) % 7 - 3;
    const int dz = flat % 7 - 3;
    const auto rel = rel_index(dx, dy, dz);
    if (!rel) continue;
    // T[d] = K(target - source) at displacement
    // (box-center delta) + spacing * d, d in [-(p-1), p-1]^3, embedded
    // circularly in the m^3 grid.
    std::vector<fft::cplx> t(g, fft::cplx{0, 0});
    const Vec3 center_delta{dx * 2.0 * h, dy * 2.0 * h, dz * 2.0 * h};
    const auto wrap = [m](int d) {
      return static_cast<std::size_t>(d < 0 ? d + static_cast<int>(m) : d);
    };
    const int pm1 = cfg_.p - 1;
    for (int a = -pm1; a <= pm1; ++a)
      for (int b = -pm1; b <= pm1; ++b)
        for (int c = -pm1; c <= pm1; ++c) {
          const Vec3 displacement = center_delta +
                                    Vec3{spacing * a, spacing * b,
                                         spacing * c};
          t[(wrap(a) * m + wrap(b)) * m + wrap(c)] =
              fft::cplx{kernel.eval(displacement, origin), 0};
        }
    plan_.forward(t);
    double* re = bank->re.data() + *rel * g;
    double* im = bank->im.data() + *rel * g;
    for (std::size_t k = 0; k < g; ++k) {
      re[k] = t[k].real();
      im[k] = t[k].imag();
    }
  }
  return bank;
}

void Operators::build_level(const Kernel& kernel, int l, double root_half) {
  LevelOperators& ops = levels_[static_cast<std::size_t>(l)];
  const double h = root_half / std::exp2(l);
  const Box box{{0, 0, 0}, h};

  ops.surf_inner = surface_template(cfg_.p, h, kRadiusInner);
  ops.surf_outer = surface_template(cfg_.p, h, kRadiusOuter);

  // Equivalent-density solves. The check-to-equivalent matrices are the
  // ill-conditioned heart of KIFMM; Tikhonov keeps the solve stable while
  // the regularization error stays below the surface-discretization error.
  const auto up_equiv = surface_points(cfg_.p, box, kRadiusInner);
  const auto up_check = surface_points(cfg_.p, box, kRadiusOuter);
  ops.uc2e = la::pinv_tikhonov(kernel.matrix(up_check, up_equiv),
                               cfg_.tikhonov_eps);

  const auto down_check = surface_points(cfg_.p, box, kRadiusInner);
  const auto down_equiv = surface_points(cfg_.p, box, kRadiusOuter);
  ops.dc2e = la::pinv_tikhonov(kernel.matrix(down_check, down_equiv),
                               cfg_.tikhonov_eps);

  // M2M / L2L per child octant (children of a level-l box live at l+1).
  // eroof: cold (operator setup: per-octant translation matrices are
  // built once per plan, not per evaluate)
#pragma omp parallel for schedule(static)
  for (int o = 0; o < 8; ++o) {
    const Box child = box.child(static_cast<unsigned>(o));
    const auto child_up_equiv = surface_points(cfg_.p, child, kRadiusInner);
    ops.m2m[static_cast<std::size_t>(o)] =
        kernel.matrix(up_check, child_up_equiv);
    const auto child_down_check = surface_points(cfg_.p, child, kRadiusInner);
    ops.l2l[static_cast<std::size_t>(o)] =
        kernel.matrix(child_down_check, down_equiv);
  }

  if (!cfg_.use_fft_m2l) return;
  ops.m2l = build_m2l_bank(kernel, h);
  ops.m2l_scale = 1.0;
}

void Operators::rescale_level(int l, int ref, double degree) {
  const LevelOperators& src = levels_[static_cast<std::size_t>(ref)];
  LevelOperators& ops = levels_[static_cast<std::size_t>(l)];
  // Level-l boxes are s times the reference size, s = 2^(ref - l); every
  // kernel matrix entry scales by s^degree and the equivalent solves by its
  // inverse (pinv_tikhonov(c K, eps) == pinv_tikhonov(K, eps) / c since the
  // filter cutoff is relative to s_max).
  const double k_scale = std::exp2(static_cast<double>(ref - l) * degree);
  const double inv_scale = 1.0 / k_scale;

  const double h_ratio = std::exp2(static_cast<double>(ref - l));
  ops.surf_inner = src.surf_inner;
  ops.surf_outer = src.surf_outer;
  for (auto* t : {&ops.surf_inner, &ops.surf_outer})
    for (auto* axis : {&t->x, &t->y, &t->z})
      for (double& v : *axis) v *= h_ratio;

  ops.uc2e = scaled(src.uc2e, inv_scale);
  ops.dc2e = scaled(src.dc2e, inv_scale);
  for (std::size_t o = 0; o < 8; ++o) {
    ops.m2m[o] = scaled(src.m2m[o], k_scale);
    ops.l2l[o] = scaled(src.l2l[o], k_scale);
  }
  ops.m2l = src.m2l;  // shared: the Hadamard path applies m2l_scale
  ops.m2l_scale = src.m2l_scale * k_scale;
}

}  // namespace eroof::fmm
