// Incremental FMM session for time-stepping workloads (DESIGN.md §13).
//
// A one-shot FmmEvaluator pays for its full setup -- octree, interaction
// lists, node slots, arenas, and (without a shared plan) the per-level
// operators -- on every construction. A dynamics loop issues a *sequence*
// of evaluations over positions that drift a little each step, so almost
// all of that setup is redundant. FmmSession persists it:
//
//   * small drift   -> Octree::try_refit re-bins the moved points into the
//                      existing structure; lists, slots, arenas, spectra,
//                      and the DAG skeleton survive untouched, and the step
//                      performs zero heap allocations;
//   * big drift     -> full tree + evaluator rebuild, but the FmmPlan
//                      (operators + M2L bank, the dominant cost) is reused
//                      as long as the new depth fits under the plan's;
//   * deeper tree   -> only then is a new plan built.
//
// Invariant, tested differentially: after every move_to, evaluate() is
// bitwise identical to a fresh FmmEvaluator built from scratch over the
// same positions, across executors and OMP thread counts.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "fmm/evaluator.hpp"
#include "fmm/kernel.hpp"
#include "fmm/octree.hpp"
#include "fmm/plan.hpp"

namespace eroof::fmm {

class FmmSession {
 public:
  struct Config {
    /// Tree parameters. `tree.domain.half` must be > 0: a fixed protocol
    /// domain is what makes the tree geometry (and the plan's per-level
    /// operators) step-invariant -- without it every step would re-derive a
    /// different bounding cube and nothing could be reused.
    Octree::Params tree;
    FmmConfig fmm;
    FmmExecutor executor = FmmExecutor::kPhases;
  };

  FmmSession(std::shared_ptr<const Kernel> kernel,
             std::span<const Vec3> points, Config cfg);

  /// Moves the session to new positions (same particle count, all inside
  /// the domain). Returns true when the move was absorbed by an in-place
  /// refit -- the steady-state path, allocation-free after step 0 -- and
  /// false when it forced a rebuild (tree structure changed). Either way
  /// the session afterwards evaluates these positions exactly.
  bool move_to(std::span<const Vec3> positions);

  /// Potentials for the current positions; caller order, allocation-free
  /// after the first call on the current evaluator.
  void evaluate_into(std::span<const double> densities,
                     std::span<double> out);
  std::vector<double> evaluate(std::span<const double> densities);

  std::size_t n_points() const { return evaluator_->tree().points().size(); }
  FmmEvaluator& evaluator() { return *evaluator_; }
  const FmmEvaluator& evaluator() const { return *evaluator_; }
  const std::shared_ptr<const FmmPlan>& plan() const { return plan_; }
  const Config& config() const { return cfg_; }

  struct Stats {
    std::uint64_t moves = 0;
    std::uint64_t refits = 0;    ///< moves absorbed in place
    std::uint64_t rebuilds = 0;  ///< moves that rebuilt tree + evaluator
    std::uint64_t plan_builds = 0;  ///< operator builds (incl. the initial)
  };
  const Stats& stats() const { return stats_; }

 private:
  void rebuild(std::span<const Vec3> positions);

  Config cfg_;
  std::shared_ptr<const Kernel> kernel_;
  std::shared_ptr<const FmmPlan> plan_;
  /// optional only for emplace-rebuild; engaged from construction on.
  std::optional<FmmEvaluator> evaluator_;
  Stats stats_;
};

}  // namespace eroof::fmm
