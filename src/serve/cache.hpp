// Sharded, string-keyed LRU cache with build-once semantics.
//
// The serving plan cache's engine, kept generic: values are immutable
// (shared_ptr<const V>) and built on demand by the first requester of a
// key. Concurrent requesters of the same key never duplicate the build --
// the first arrival inserts a promise and constructs the value *outside*
// the shard lock (builds are expensive: operators, DAG skeleton, schedule
// search), while later arrivals wait on the shared future. Keys hash to
// independent shards so requests for different plans do not serialize on
// one mutex.
//
// Eviction is LRU per shard (per-shard capacity = ceil(capacity/shards));
// an evicted value stays alive for whoever still holds it -- eviction only
// forgets the cache's reference, exactly what shared_ptr is for. Capacity 0
// disables caching entirely (every call builds; the benchmark's cold mode).
//
// Counters: hits/misses/evictions are kept as atomics for stats() and
// mirrored into the trace registry as "<prefix>.hit|miss|eviction" --
// integer increments, so registry totals are exact under any thread
// interleaving.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "trace/trace.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace eroof::serve {

template <typename V>
class ShardedLruCache {
 public:
  struct Config {
    std::size_t capacity = 16;  ///< total entries; 0 = bypass (never cache)
    std::size_t shards = 4;
    std::string counter_prefix = "serve.cache";
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  struct Result {
    std::shared_ptr<const V> value;
    bool hit = false;  ///< false iff this call ran the builder
  };

  explicit ShardedLruCache(Config cfg) : cfg_(std::move(cfg)) {
    EROOF_REQUIRE(cfg_.shards >= 1);
    shard_capacity_ =
        cfg_.capacity == 0
            ? 0
            : (cfg_.capacity + cfg_.shards - 1) / cfg_.shards;  // ceil
    shards_ = std::vector<Shard>(cfg_.shards);
  }

  /// Returns the cached value for `key`, building it via `builder` on first
  /// use. `builder` must be deterministic per key and may not re-enter the
  /// cache. Exceptions from the builder propagate to every waiter and the
  /// entry is dropped (the next request retries).
  Result get_or_build(
      const std::string& key,
      const std::function<std::shared_ptr<const V>()>& builder) {
    if (cfg_.capacity == 0) {
      count(misses_, ".miss");
      return {builder(), false};
    }

    Shard& shard = shards_[util::fnv1a64(key) % shards_.size()];
    std::promise<std::shared_ptr<const V>> promise;
    std::uint64_t my_gen = 0;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      const auto it = shard.map.find(key);
      // Membership test, not iteration: no order dependence.
      if (it != shard.map.end()) {  // eroof-lint: allow(nondet-unordered-iter)
        // Hit (possibly on an in-flight build: we wait, never rebuild).
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
        auto future = it->second.future;
        lock.unlock();
        count(hits_, ".hit");
        return {future.get(), true};
      }

      shard.lru.push_front(key);
      Entry entry;
      entry.future = promise.get_future().share();
      entry.lru_it = shard.lru.begin();
      my_gen = entry.gen = ++shard.gen;
      shard.map.emplace(key, std::move(entry));

      while (shard.map.size() > shard_capacity_) {
        // Never the entry just inserted: it sits at the LRU front and
        // shard_capacity_ >= 1 keeps at least one entry.
        const std::string victim = shard.lru.back();
        shard.lru.pop_back();
        shard.map.erase(victim);
        count(evictions_, ".eviction");
      }
    }

    count(misses_, ".miss");
    std::shared_ptr<const V> value;
    try {
      value = builder();
    } catch (...) {
      promise.set_exception(std::current_exception());
      drop(shard, key, my_gen);
      throw;
    }
    promise.set_value(value);
    return {std::move(value), false};
  }

  Stats stats() const {
    // Counter snapshot: independently monotonic tallies with no
    // cross-counter consistency promise; relaxed loads suffice.
    return {hits_.load(std::memory_order_relaxed),       // eroof-lint: allow(relaxed-atomic)
            misses_.load(std::memory_order_relaxed),     // eroof-lint: allow(relaxed-atomic)
            evictions_.load(std::memory_order_relaxed)};  // eroof-lint: allow(relaxed-atomic)
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      n += s.map.size();
    }
    return n;
  }

  const Config& config() const { return cfg_; }

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<const V>> future;
    std::list<std::string>::iterator lru_it;
    std::uint64_t gen = 0;  ///< insertion generation; identifies the entry
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> map;
    std::list<std::string> lru;  ///< front = most recently used
    std::uint64_t gen = 0;  ///< bumped per insertion (under mu)
  };

  void count(std::atomic<std::uint64_t>& counter, const char* suffix) {
    // Monotonic tally, read only by stats(); no ordering needed.
    counter.fetch_add(1, std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
    trace::counter_add(cfg_.counter_prefix + suffix, 1.0);
  }

  /// Failed-build cleanup: removes `key` only if the map still holds the
  /// entry inserted by the failing call (generation `gen`). If that entry
  /// was already LRU-evicted and another thread re-inserted a fresh entry
  /// for the same key, the fresh one is healthy and must survive --
  /// dropping it would force a redundant rebuild.
  void drop(Shard& shard, const std::string& key, std::uint64_t gen) {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    // Membership test, not iteration: no order dependence.
    if (it == shard.map.end()) return;  // eroof-lint: allow(nondet-unordered-iter)
    if (it->second.gen != gen) return;
    shard.lru.erase(it->second.lru_it);
    shard.map.erase(it);
  }

  Config cfg_;
  std::size_t shard_capacity_ = 0;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace eroof::serve
