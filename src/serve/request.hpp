// Wire types of the FMM serving subsystem (DESIGN.md §12).
//
// A request is one independent FMM solve: a point cloud inside the protocol
// domain, source densities, a kernel and an accuracy order. The response
// carries the potentials (bitwise identical to a fresh single-threaded
// FmmEvaluator run on the same request -- the serving contract), the
// per-phase DVFS schedule the energy model picked for this request's plan,
// and the observability fields benchmarks and tests key on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fmm/geometry.hpp"

namespace eroof::serve {

/// The protocol domain: every request's points must lie inside this cube.
/// Fixing the root box is what makes tree geometry -- and therefore the
/// cached per-level operators -- a function of (kernel, accuracy, depth)
/// instead of one request's bounding box.
inline constexpr fmm::Box kServeDomain{{0.5, 0.5, 0.5}, 0.5};

/// Which kernel a request wants; `param` is Yukawa's lambda or the
/// Gaussian's sigma (ignored for Laplace). Kernels are identified by value
/// so the plan-cache key can be built from the spec alone.
enum class KernelKind : std::uint8_t { kLaplace, kYukawa, kGaussian };
struct KernelSpec {
  KernelKind kind = KernelKind::kLaplace;
  double param = 0.0;
};

/// One FMM solve. `p` is the surface order (the accuracy knob q of the
/// plan-cache key); `max_points_per_box` the paper's workload knob Q, which
/// (with the point count) determines the uniform tree depth.
struct FmmRequest {
  std::uint64_t id = 0;
  KernelSpec kernel;
  int p = 4;
  std::uint32_t max_points_per_box = 64;
  std::vector<fmm::Vec3> points;
  std::vector<double> densities;
};

enum class ServeStatus : std::uint8_t {
  kOk,       ///< solved; potentials are valid
  kShed,     ///< admission control rejected the request (queue full)
  kInvalid,  ///< malformed request (empty/mismatched arrays, out-of-domain)
  kError,    ///< the solve failed server-side; `error` has the reason
};

/// Protocol validation: empty string when `req` is well-formed, otherwise a
/// human-readable reason. Checks non-empty points, densities/points size
/// agreement, and that every point lies inside kServeDomain -- the contract
/// the fixed-root tree build depends on. The server runs this at admission
/// (submit / serve_now) and answers violations with ServeStatus::kInvalid
/// instead of letting a contract failure escape a worker thread.
std::string validate_request(const FmmRequest& req);

/// The chosen per-phase DVFS schedule, in the canonical phase order
/// UP,V,X,DOWN,U,W. Empty when the server runs without a schedule context.
///
/// Determinism scope: only `potentials` carries the bitwise serving
/// contract. The schedule is memoized per (plan key, point count) and
/// profiled from the first request that reaches that pair, so two
/// same-sized requests with different point *distributions* share the
/// first arrival's schedule -- representative-based by design (the DP
/// amortizes across repeats; re-profiling every request would cost more
/// than it saves).
struct ServeSchedule {
  std::vector<std::string> setting_labels;  ///< one grid label per phase
  double pred_time_s = 0;
  double pred_energy_j = 0;
  int switches = 0;
};

struct FmmResponse {
  std::uint64_t id = 0;
  ServeStatus status = ServeStatus::kOk;
  std::vector<double> potentials;  ///< caller's point order; empty if shed

  ServeSchedule schedule;

  // Observability.
  std::string plan_key;   ///< the plan-cache key this request resolved to
  bool cache_hit = false;  ///< true if the plan was served from the cache
  double queue_us = 0;    ///< time from admission to a worker claiming it
  double service_us = 0;  ///< time inside the worker (solve + respond)
  std::string error;      ///< reason when status is kInvalid / kError
};

}  // namespace eroof::serve
