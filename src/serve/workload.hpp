// Deterministic mixed-workload generator for the serving benchmark/tests.
//
// make_request(cfg, i) is a pure function of (cfg.seed, i): request i is
// identical no matter which requests were generated before it, in which
// order, or on which thread -- the property the bitwise serving tests rely
// on when they replay the same request against a fresh evaluator.
//
// The mix cycles point distributions (uniform cube, sphere surface,
// Gaussian clusters) and request sizes; every point set is mapped into the
// protocol domain kServeDomain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/request.hpp"

namespace eroof::serve {

struct WorkloadConfig {
  std::uint64_t seed = 2016;
  /// Request sizes, cycled by request index.
  std::vector<std::size_t> sizes = {1024, 2048, 4096};
  /// Kernel specs, cycled by request index. Defaults to Laplace-only (the
  /// homogeneous-kernel mix of the headline benchmark).
  std::vector<KernelSpec> kernels = {{KernelKind::kLaplace, 0.0}};
  int p = 4;
  std::uint32_t max_points_per_box = 64;
};

/// Builds request `index` of the workload. Deterministic and
/// order-independent (each request forks its own RNG stream).
FmmRequest make_request(const WorkloadConfig& cfg, std::uint64_t index);

}  // namespace eroof::serve
