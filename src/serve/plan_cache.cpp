#include "serve/plan_cache.hpp"

#include <bit>
#include <cstdint>
#include <sstream>

#include "util/require.hpp"

namespace eroof::serve {
namespace {

const char* kind_name(KernelKind k) {
  switch (k) {
    case KernelKind::kLaplace:
      return "laplace";
    case KernelKind::kYukawa:
      return "yukawa";
    default:
      return "gaussian";
  }
}

/// Exact bit pattern of a double, hex-encoded: distinct values never alias
/// and the key is platform-stable.
void append_bits(std::ostringstream& os, double v) {
  os << std::hex << std::bit_cast<std::uint64_t>(v) << std::dec;
}

}  // namespace

std::shared_ptr<const fmm::Kernel> make_kernel(const KernelSpec& spec) {
  switch (spec.kind) {
    case KernelKind::kLaplace:
      return std::make_shared<fmm::LaplaceKernel>();
    case KernelKind::kYukawa:
      return std::make_shared<fmm::YukawaKernel>(spec.param);
    default:
      return std::make_shared<fmm::GaussianKernel>(spec.param);
  }
}

std::string plan_cache_key(const KernelSpec& spec, int p,
                           std::uint32_t max_points_per_box, int depth,
                           const fmm::Box& domain) {
  std::ostringstream os;
  os << kind_name(spec.kind) << ':';
  append_bits(os, spec.kind == KernelKind::kLaplace ? 0.0 : spec.param);
  os << "|p=" << p << "|q=" << max_points_per_box << "|d=" << depth
     << "|dom=";
  append_bits(os, domain.center.x);
  os << ',';
  append_bits(os, domain.center.y);
  os << ',';
  append_bits(os, domain.center.z);
  os << ',';
  append_bits(os, domain.half);
  return os.str();
}

}  // namespace eroof::serve
