// The serving plan cache: (kernel, accuracy q, tree depth) -> ServePlan.
//
// A ServePlan is everything reusable across requests that resolve to the
// same key: the FmmPlan (per-level operators + shared M2L bank + sealed
// DAG skeleton) and the memoized schedule-DP result. A cache hit therefore
// skips operator construction, DAG structure building AND the schedule
// search; the per-request remainder (tree, lists, arenas, the solve
// itself) is what the worker still executes.
//
// Key contents: kernel spec (kind + parameter bits), surface order p,
// max points per box Q, tree depth, and the domain bits -- every input the
// plan's bitwise output contract depends on. Doubles enter as exact bit
// patterns, so distinct parameters never alias.
#pragma once

#include <memory>
#include <string>

#include "core/schedule.hpp"
#include "fmm/kernel.hpp"
#include "fmm/plan.hpp"
#include "serve/cache.hpp"
#include "serve/request.hpp"

namespace eroof::serve {

/// Instantiates the kernel a spec describes. Each plan owns its kernel
/// instance; kernels are stateless, so equality-of-spec implies
/// equality-of-behavior.
std::shared_ptr<const fmm::Kernel> make_kernel(const KernelSpec& spec);

/// The cache key. Deterministic, human-readable prefix + exact parameter
/// bits (hex-encoded doubles).
std::string plan_cache_key(const KernelSpec& spec, int p,
                           std::uint32_t max_points_per_box, int depth,
                           const fmm::Box& domain);

/// One cached unit of reuse.
struct ServePlan {
  std::string key;
  std::shared_ptr<const fmm::FmmPlan> plan;
  /// The schedule the chain DP picked for this plan's phase profile (from
  /// the request that built the plan -- the plan's canonical
  /// representative). Empty pick when no schedule context is configured.
  model::PhaseSchedule schedule;
  /// Grid labels matching schedule.pick, precomputed so responses need no
  /// grid lookup.
  std::vector<std::string> setting_labels;
};

using PlanCache = ShardedLruCache<ServePlan>;

}  // namespace eroof::serve
