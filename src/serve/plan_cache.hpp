// The serving plan cache: (kernel, accuracy q, tree depth) -> ServePlan.
//
// A ServePlan is everything reusable across requests that resolve to the
// same key: the FmmPlan (per-level operators + shared M2L bank + sealed
// DAG skeleton). A cache hit therefore skips operator construction and DAG
// structure building; the per-request remainder (tree, lists, arenas, the
// solve itself) is what the worker still executes. The schedule-DP result
// lives in model::ScheduleMemo keyed by (plan key, point count) -- not
// here, because the profiled phase workloads depend on the request size,
// so one plan legitimately maps to several schedules.
//
// Key contents: kernel spec (kind + parameter bits), surface order p,
// max points per box Q, tree depth, and the domain bits -- every input the
// plan's bitwise output contract depends on. Doubles enter as exact bit
// patterns, so distinct parameters never alias.
#pragma once

#include <memory>
#include <string>

#include "fmm/kernel.hpp"
#include "fmm/plan.hpp"
#include "serve/cache.hpp"
#include "serve/request.hpp"

namespace eroof::serve {

/// Instantiates the kernel a spec describes. Each plan owns its kernel
/// instance; kernels are stateless, so equality-of-spec implies
/// equality-of-behavior.
std::shared_ptr<const fmm::Kernel> make_kernel(const KernelSpec& spec);

/// The cache key. Deterministic, human-readable prefix + exact parameter
/// bits (hex-encoded doubles).
std::string plan_cache_key(const KernelSpec& spec, int p,
                           std::uint32_t max_points_per_box, int depth,
                           const fmm::Box& domain);

/// One cached unit of reuse.
struct ServePlan {
  std::string key;
  std::shared_ptr<const fmm::FmmPlan> plan;
};

using PlanCache = ShardedLruCache<ServePlan>;

}  // namespace eroof::serve
