#include "serve/server.hpp"

#include <omp.h>

#include <chrono>
#include <string>
#include <utility>

#include "fmm/gpu_profile.hpp"
#include "trace/trace.hpp"
#include "ubench/campaign.hpp"
#include "util/require.hpp"

namespace eroof::serve {
namespace {

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string validate_request(const FmmRequest& req) {
  if (req.points.empty()) return "request has no points";
  if (req.densities.size() != req.points.size())
    return "densities/points size mismatch (" +
           std::to_string(req.densities.size()) + " vs " +
           std::to_string(req.points.size()) + ")";
  for (std::size_t i = 0; i < req.points.size(); ++i)
    if (!kServeDomain.contains(req.points[i]))
      return "point " + std::to_string(i) + " outside the protocol domain";
  return {};
}

std::shared_ptr<const ScheduleContext> ScheduleContext::tegra_default(
    std::uint64_t campaign_seed) {
  const auto soc = hw::Soc::tegra_k1();
  const hw::PowerMon meter;
  const util::RngStream root(campaign_seed);
  const auto campaign = ub::paper_campaign(soc, meter, root);
  std::vector<model::FitSample> train;
  for (const auto& s : campaign)
    if (s.role == hw::SettingRole::kTrain)
      train.push_back(model::to_fit_sample(s.meas));
  return std::make_shared<const ScheduleContext>(
      ScheduleContext{soc, model::fit_energy_model(train).model,
                      hw::full_grid(), hw::DvfsTransitionModel{100e-6, 50e-6}});
}

FmmServer::FmmServer(ServerConfig cfg)
    : cfg_(cfg),
      queue_(cfg.queue_capacity),
      cache_({.capacity = cfg.plan_cache_capacity,
              .shards = cfg.plan_cache_shards,
              .counter_prefix = "serve.plan_cache"}) {
  EROOF_REQUIRE_MSG(cfg_.workers >= 1, "FmmServer needs >= 1 worker");
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i)
    workers_.emplace_back([this] { worker_main(); });
}

FmmServer::~FmmServer() { shutdown(); }

std::future<FmmResponse> FmmServer::submit(FmmRequest req) {
  Job job;
  job.req = std::move(req);
  job.enqueued_us = now_us();
  std::future<FmmResponse> future = job.promise.get_future();
  const std::uint64_t id = job.req.id;
  // Validate at admission: workers must never see a malformed request -- a
  // contract failure thrown inside a worker thread would std::terminate the
  // whole server and abandon the job's promise.
  if (std::string reason = validate_request(job.req); !reason.empty()) {
    job.promise.set_value(invalid_response(id, std::move(reason)));
    return future;
  }
  if (!queue_.try_push(std::move(job))) {
    // Admission control: answer immediately instead of queueing unbounded
    // work. `job` is intact on rejection, so its promise still answers.
    FmmResponse resp;
    resp.id = id;
    resp.status = ServeStatus::kShed;
    // Monotonic tally, read only by stats(); no ordering needed.
    shed_.fetch_add(1, std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
    trace::counter_add("serve.shed", 1.0);
    job.promise.set_value(std::move(resp));
  }
  return future;
}

FmmResponse FmmServer::serve_now(FmmRequest req) {
  if (std::string reason = validate_request(req); !reason.empty())
    return invalid_response(req.id, std::move(reason));
  return serve_guarded(std::move(req));
}

FmmResponse FmmServer::invalid_response(std::uint64_t id, std::string reason) {
  FmmResponse resp;
  resp.id = id;
  resp.status = ServeStatus::kInvalid;
  resp.error = std::move(reason);
  // Monotonic tally, read only by stats(); no ordering needed.
  invalid_.fetch_add(1, std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
  trace::counter_add("serve.invalid", 1.0);
  return resp;
}

void FmmServer::shutdown() {
  if (down_.exchange(true)) return;
  queue_.close();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

FmmServer::Stats FmmServer::stats() const {
  // Counter snapshot: each tally is independently monotonic and stats()
  // makes no cross-counter consistency promise, so relaxed loads suffice.
  return {served_.load(std::memory_order_relaxed),    // eroof-lint: allow(relaxed-atomic)
          shed_.load(std::memory_order_relaxed),      // eroof-lint: allow(relaxed-atomic)
          invalid_.load(std::memory_order_relaxed),   // eroof-lint: allow(relaxed-atomic)
          errors_.load(std::memory_order_relaxed),    // eroof-lint: allow(relaxed-atomic)
          cache_.stats()};
}

void FmmServer::worker_main() {
  // Each solve runs single-threaded; serving parallelism comes from
  // concurrent requests, and per-request work stays deterministic no matter
  // how many co-tenants run. The num-threads ICV is per-thread, so this
  // only serializes *this* worker's OpenMP regions.
  omp_set_num_threads(1);
  // eroof: hot-begin -- steady-state serving loop: no allocation beyond the
  // per-request evaluator state, no locks beyond the queue handoff.
  while (auto job = queue_.pop()) {
    const std::int64_t claimed_us = now_us();
    // eroof: cold (per-request solve: builds the request's own evaluator and
    // response, which allocate by design; the evaluator's steady-state
    // zero-alloc contract is enforced by its own hot regions)
    FmmResponse resp = serve_guarded(std::move(job->req));
    resp.queue_us = static_cast<double>(claimed_us - job->enqueued_us);
    job->promise.set_value(std::move(resp));
  }
  // eroof: hot-end
}

FmmResponse FmmServer::serve_guarded(FmmRequest req) {
  const std::uint64_t id = req.id;
  try {
    return serve_one(std::move(req));
  } catch (const std::exception& e) {
    FmmResponse resp;
    resp.id = id;
    resp.status = ServeStatus::kError;
    resp.error = e.what();
    // Monotonic tally, read only by stats(); no ordering needed.
    errors_.fetch_add(1, std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
    trace::counter_add("serve.error", 1.0);
    return resp;
  } catch (...) {
    FmmResponse resp;
    resp.id = id;
    resp.status = ServeStatus::kError;
    resp.error = "unknown exception during solve";
    // Monotonic tally, read only by stats(); no ordering needed.
    errors_.fetch_add(1, std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
    trace::counter_add("serve.error", 1.0);
    return resp;
  }
}

FmmResponse FmmServer::serve_one(FmmRequest req) {
  const std::int64_t start_us = now_us();
  trace::ScopedSpan span("serve.request", "serve");

  FmmResponse resp;
  resp.id = req.id;
  EROOF_REQUIRE_MSG(!req.points.empty(), "request has no points");
  EROOF_REQUIRE_MSG(req.densities.size() == req.points.size(),
                    "densities/points size mismatch");

  // The tree is a protocol function of the request: fixed domain, uniform
  // depth from (N, Q). Identical across workers and arrival orders.
  fmm::Octree::Params tp;
  tp.max_points_per_box = req.max_points_per_box;
  tp.uniform_depth =
      fmm::Octree::uniform_depth_for(req.points.size(), req.max_points_per_box);
  tp.domain = kServeDomain;
  fmm::Octree tree(req.points, tp);

  const std::string key =
      plan_cache_key(req.kernel, req.p, req.max_points_per_box,
                     tree.max_depth(), tree.domain());
  const PlanCache::Result cached = cache_.get_or_build(
      key, [&] { return build_plan(key, req, tree); });
  const ServePlan& sp = *cached.value;

  fmm::FmmEvaluator ev(sp.plan, std::move(tree));
  ev.set_executor(cfg_.executor);

  if (cfg_.schedule_ctx) {
    const ScheduleContext& ctx = *cfg_.schedule_ctx;
    // Memoized per (plan key, point count), not per plan key alone: the
    // profiled phase workloads depend on the request's size, so keying by
    // plan key only would make the reported schedule depend on which
    // request happened to build the plan (arrival order / cache state).
    // With N in the key, every repeat of a request shape reads the same
    // memo entry. The residual representative-ness (same-N requests with
    // different point *distributions* share the first arrival's schedule)
    // is documented on ServeSchedule; only potentials are bitwise.
    const std::string skey =
        key + "|n=" + std::to_string(req.points.size());
    const model::PhaseSchedule& sched =
        schedule_memo_.schedule_for_plan(skey, [&] {
          const auto prof = fmm::profile_gpu_execution(ev);
          std::vector<hw::Workload> phases;
          phases.reserve(prof.phases.size());
          for (const auto& ph : prof.phases) phases.push_back(ph.workload);
          const auto pred =
              model::predict_phase_grid(ctx.model, ctx.soc, phases, ctx.grid);
          return model::schedule_phases(pred, ctx.transitions);
        });
    resp.schedule.setting_labels.reserve(sched.pick.size());
    for (const std::size_t pick : sched.pick)
      resp.schedule.setting_labels.push_back(ctx.grid[pick].label());
    resp.schedule.pred_time_s = sched.pred_time_s;
    resp.schedule.pred_energy_j = sched.pred_energy_j;
    resp.schedule.switches = sched.switches;
  }

  resp.potentials = ev.evaluate(req.densities);

  resp.plan_key = key;
  resp.cache_hit = cached.hit;
  resp.service_us = static_cast<double>(now_us() - start_us);
  // Monotonic tally, read only by stats(); no ordering needed.
  served_.fetch_add(1, std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
  trace::counter_add("serve.served", 1.0);
  return resp;
}

std::shared_ptr<const ServePlan> FmmServer::build_plan(
    const std::string& key, const FmmRequest& req, const fmm::Octree& tree) {
  trace::ScopedSpan span("serve.plan_build", "serve");

  fmm::FmmConfig fcfg;
  fcfg.p = req.p;
  auto plan = std::make_shared<fmm::FmmPlan>(
      make_kernel(req.kernel), tree.domain().half, tree.max_depth(), fcfg);
  plan->attach_dag_skeleton(fmm::build_fmm_dag_skeleton(
      tree, fmm::build_lists(tree), fcfg.use_fft_m2l));

  auto sp = std::make_shared<ServePlan>();
  sp->key = key;
  sp->plan = plan;
  return sp;
}

}  // namespace eroof::serve
