// Multi-tenant FMM serving (DESIGN.md §12).
//
// FmmServer accepts a stream of independent FMM requests through a bounded
// MPMC queue with admission control and answers each with the solved
// potentials plus the per-phase DVFS schedule the chain DP picked for the
// request's plan. The headline mechanism is the plan cache: requests that
// resolve to the same (kernel, accuracy, depth) key share one FmmPlan --
// per-level operators, the M2L bank, the sealed DAG skeleton -- so a cache
// hit skips operator construction and DAG structure building. The
// schedule-DP result is memoized separately per (plan key, point count):
// the first request with that shape profiles its phase workloads and runs
// the DP once; every repeat of the shape skips the search.
//
// Serving contract: each response's potentials are bitwise identical to a
// fresh single-threaded FmmEvaluator run on the same request, independent
// of worker count, arrival order, and cache hits vs misses. The pieces that
// guarantee it: the fixed protocol domain (tree geometry is a function of
// the request, not of co-tenants), per-worker OpenMP serialization (each
// solve runs single-threaded; parallelism comes from concurrent requests),
// and plans whose per-level operators are built/rescaled independently of
// the request that triggered the build.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/fit.hpp"
#include "core/schedule.hpp"
#include "fmm/evaluator.hpp"
#include "hw/dvfs.hpp"
#include "hw/soc.hpp"
#include "serve/plan_cache.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"

namespace eroof::serve {

/// Everything the schedule search needs, fitted once and shared read-only by
/// every worker: the SoC model, the energy model fitted from the paper
/// campaign's training half, the DVFS setting grid, and the transition-cost
/// model. Optional -- a server without one skips schedules (pure solving).
struct ScheduleContext {
  hw::Soc soc;
  model::EnergyModel model;
  std::vector<hw::DvfsSetting> grid;
  hw::DvfsTransitionModel transitions;

  /// The default context: Tegra K1 SoC, model fitted from the seeded paper
  /// campaign, full clock grid, realistic 100us/50uJ transitions.
  static std::shared_ptr<const ScheduleContext> tegra_default(
      std::uint64_t campaign_seed = 42);
};

struct ServerConfig {
  int workers = 1;
  std::size_t queue_capacity = 64;  ///< admission-control bound
  std::size_t plan_cache_capacity = 16;  ///< 0 = no caching (cold mode)
  std::size_t plan_cache_shards = 4;
  fmm::FmmExecutor executor = fmm::FmmExecutor::kDag;
  std::shared_ptr<const ScheduleContext> schedule_ctx;  ///< may be null
};

class FmmServer {
 public:
  explicit FmmServer(ServerConfig cfg);
  ~FmmServer();
  FmmServer(const FmmServer&) = delete;
  FmmServer& operator=(const FmmServer&) = delete;

  /// Submits one request. Never blocks: malformed requests (see
  /// validate_request) resolve immediately to kInvalid, and if the queue is
  /// full (or the server is shut down) the future resolves immediately to a
  /// kShed response -- admission control sheds load instead of queueing it.
  /// Workers never see a request that fails validation, and a solve that
  /// still throws server-side answers with kError instead of taking the
  /// process down.
  std::future<FmmResponse> submit(FmmRequest req);

  /// Serves one request synchronously on the calling thread, against the
  /// same plan cache. The benchmark's single-threaded reference path.
  FmmResponse serve_now(FmmRequest req);

  /// Stops admission, drains queued requests, joins the workers. Idempotent;
  /// the destructor calls it.
  void shutdown();

  struct Stats {
    std::uint64_t served = 0;
    std::uint64_t shed = 0;
    std::uint64_t invalid = 0;  ///< rejected by validate_request at admission
    std::uint64_t errors = 0;   ///< solves that failed server-side (kError)
    PlanCache::Stats cache;
  };
  Stats stats() const;
  std::size_t queue_depth() const { return queue_.depth(); }
  const ServerConfig& config() const { return cfg_; }

 private:
  struct Job {
    FmmRequest req;
    std::promise<FmmResponse> promise;
    std::int64_t enqueued_us = 0;
  };

  void worker_main();
  /// serve_one with the worker-side safety net: any exception becomes a
  /// kError response instead of escaping the thread (which would
  /// std::terminate the whole server) and abandoning the job's promise.
  FmmResponse serve_guarded(FmmRequest req);
  FmmResponse serve_one(FmmRequest req);
  FmmResponse invalid_response(std::uint64_t id, std::string reason);
  std::shared_ptr<const ServePlan> build_plan(const std::string& key,
                                              const FmmRequest& req,
                                              const fmm::Octree& tree);

  ServerConfig cfg_;
  BoundedQueue<Job> queue_;
  PlanCache cache_;
  model::ScheduleMemo schedule_memo_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> invalid_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<bool> down_{false};
};

}  // namespace eroof::serve
