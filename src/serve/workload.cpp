#include "serve/workload.hpp"

#include <algorithm>
#include <cmath>

#include "fmm/pointgen.hpp"
#include "util/rng.hpp"

namespace eroof::serve {
namespace {

/// Maps a point into the protocol domain: contraction toward the domain
/// center. Factor 0.45 pulls the unit sphere (radius 1 around the center,
/// so it pokes outside the unit cube) strictly inside, and a final clamp
/// guards the Gaussian tails.
fmm::Vec3 into_domain(fmm::Vec3 p) {
  const fmm::Vec3 c = kServeDomain.center;
  fmm::Vec3 out{c.x + (p.x - c.x) * 0.45, c.y + (p.y - c.y) * 0.45,
                c.z + (p.z - c.z) * 0.45};
  const double lo = kServeDomain.center.x - kServeDomain.half;
  const double hi = kServeDomain.center.x + kServeDomain.half;
  out.x = std::clamp(out.x, lo, hi);
  out.y = std::clamp(out.y, lo, hi);
  out.z = std::clamp(out.z, lo, hi);
  return out;
}

}  // namespace

FmmRequest make_request(const WorkloadConfig& cfg, std::uint64_t index) {
  FmmRequest req;
  req.id = index;
  req.kernel = cfg.kernels[static_cast<std::size_t>(index) % cfg.kernels.size()];
  req.p = cfg.p;
  req.max_points_per_box = cfg.max_points_per_box;

  const std::size_t n =
      cfg.sizes[static_cast<std::size_t>(index) % cfg.sizes.size()];
  util::Rng rng = util::RngStream(cfg.seed).fork(index).rng();
  switch (index % 3) {
    case 0:
      req.points = fmm::uniform_cube(n, rng);
      break;
    case 1:
      req.points = fmm::sphere_surface(n, rng);
      break;
    default:
      req.points = fmm::gaussian_clusters(n, 8, 0.05, rng);
      break;
  }
  for (fmm::Vec3& p : req.points) p = into_domain(p);
  req.densities = fmm::random_densities(n, rng);
  return req;
}

}  // namespace eroof::serve
