// Bounded MPMC work queue with admission control.
//
// Producers (submit callers) never block: try_push either admits the item
// or reports the queue full so the server can shed the request -- bounded
// latency under overload beats unbounded memory growth. Consumers (the
// worker pool) block on pop until an item arrives or the queue is closed
// and drained; close() is the shutdown path and wakes every waiter.
//
// A mutex + condition variable is deliberate: requests are milliseconds of
// work, so queue transfer cost is noise, and the blocking pop gives workers
// a real idle state (no spinning between requests).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/require.hpp"

namespace eroof::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    EROOF_REQUIRE(capacity_ >= 1);
  }

  /// Admits `item` unless the queue is full or closed; returns whether it
  /// was admitted (false = shed / rejected). On rejection `item` is left
  /// intact so the caller can still answer it (e.g. with a shed response).
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item is available (returning it) or the queue is
  /// closed and drained (returning nullopt -- the consumer's exit signal).
  std::optional<T> pop() {
    // The queue handoff is the consumer's sanctioned blocking point: the
    // unique_lock is the condition variable's own guard and the wait *is*
    // the designed idle state, not work done under a lock.
    // eroof-lint: allow(hot-lock)
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });  // eroof-lint: allow(conc-blocking-under-lock)
    if (items_.empty()) return std::nullopt;
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    return out;
  }

  /// Rejects all future pushes; consumers drain what is queued, then see
  /// nullopt. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace eroof::serve
