// Closed-loop online refresh of the eq.-9 energy model (DESIGN.md §14).
//
// The batch pipeline fits the model once, from a dedicated microbenchmark
// campaign, and every schedule thereafter trusts it. But the ground-truth
// SoC's leakage tracks die temperature: as a long-horizon run heats the
// chip (hw::ThermalRamp sweeping GroundTruthEnergy::leak_scale), the true
// constant power pi_0 grows away from the fitted one and the "optimal"
// schedule -- typically low clocks that stretch runtime to save dynamic
// energy -- starts overpaying leakage. A deployed autotuner must notice and
// re-fit from the measurements it gets for free: the in-service PowerMon
// samples of the phases it is already scheduling.
//
// Three pieces close the loop:
//
//   IncrementalGram -- maintains the batch fit's normal equations as a
//     stream: G <- lambda G + r r^T, A^T b <- lambda A^T b + r e, with an
//     exponential forgetting factor lambda so old thermal regimes age out.
//     Accumulation order matches fit_energy_model's assembly pass exactly,
//     so lambda = 1 reproduces the batch fit bit for bit (both solve via
//     fit_normal_equations).
//
//   OnlineRefresh -- wraps the stream with a drift detector: an EWMA of the
//     *signed* relative prediction error (measured - predicted)/measured
//     per observed phase. Signed and smoothed on purpose: the simulator's
//     per-workload activity_sigma is a systematic few-percent bias that a
//     naive absolute-error trigger would fire on forever, while genuine
//     thermal drift biases every phase the same direction and accumulates
//     in the mean. Past `drift_bound` (after a cooldown) the caller re-fits
//     and re-runs the PR 5 chain DP.
//
//   ClosedLoopScheduler -- the reference controller for a *fixed* phase
//     chain: executes the installed schedule on a thermally drifting SoC,
//     streams the per-phase measurements into OnlineRefresh, and on a
//     trigger refits + reinstalls the DP schedule. The dynamics engine
//     (dynamics::DynamicsEngine, Tuning::refresh) wires the same loop into
//     time-stepping runs through model::ScheduleReuse::install.
//
// Identifiability: an in-service schedule visits only a handful of the 105
// grid settings, so the streamed rows alone underdetermine the 9-column
// system (the three constant-power columns are nearly collinear at a fixed
// voltage). Two mitigations, both optional: an *anchor* -- the seed
// campaign's Gram folded in at a fixed fraction of the live stream's weight
// -- and an *idle probe*, a zero-op kernel whose measurement is a pure
// pi_0 row at the probed voltage (its sub-sample-period duration exercises
// PowerMon's 2-point-trapezoid contract).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/fit.hpp"
#include "core/schedule.hpp"
#include "hw/soc.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace eroof::model {

/// Streaming normal equations for the 9-column fit with exponential
/// forgetting: every add() first decays the accumulated system by
/// `forgetting`, then accumulates the new row rank-1 -- in exactly the
/// batch assembly's floating-point order, so forgetting == 1 makes fit()
/// bitwise-equal to fit_energy_model on the same rows.
class IncrementalGram {
 public:
  explicit IncrementalGram(double forgetting = 1.0);

  /// Decay-then-accumulate one design row with target energy `energy_j`.
  void add(std::span<const double, kNumFitColumns> row, double energy_j);
  /// Convenience: builds the design row from a sample.
  void add(const FitSample& s);

  /// Equilibrated NNLS solve of the accumulated system.
  FitResult fit() const;

  /// Like fit(), but folds `anchor`'s system in at
  /// `anchor_fraction * weight() / anchor.weight()` -- i.e. the anchor
  /// contributes a fixed fraction of the live stream's evidence mass no
  /// matter how long either has accumulated. Keeps the solve well-posed
  /// when the stream visits few voltages without pinning it to the
  /// anchor's (stale) thermal regime.
  FitResult fit(const IncrementalGram& anchor, double anchor_fraction) const;

  /// Total decayed sample weight (sum of lambda^age over rows).
  double weight() const { return weight_; }
  /// Rows ever accumulated (not decayed).
  std::uint64_t rows() const { return rows_; }
  double forgetting() const { return forgetting_; }

 private:
  la::Matrix assembled() const;  ///< mirrors the live upper triangle

  double forgetting_ = 1.0;
  la::Matrix gram_;  ///< upper triangle live; lower mirrored at fit time
  std::array<double, kNumFitColumns> atb_{};
  double btb_ = 0;
  double weight_ = 0;
  std::uint64_t rows_ = 0;
};

struct OnlineRefreshConfig {
  /// Per-observation decay of the streamed normal equations. 1 = never
  /// forget (batch-equivalent); the default half-life is ~140 observations.
  double forgetting = 0.995;
  /// |EWMA of signed relative prediction error| that triggers a refresh.
  double drift_bound = 0.05;
  /// EWMA smoothing weight of one observation.
  double drift_alpha = 0.2;
  /// Anchor mass as a fraction of the live stream's (0 disables).
  double anchor_weight = 0.1;
  /// Observations before the first refresh may fire.
  std::size_t min_observations = 2 * kNumFitColumns;
  /// Observations between refreshes (lets the EWMA re-converge).
  std::size_t cooldown = 12;
};

/// The streaming re-fit path + drift detector. Holds the currently trusted
/// EnergyModel; observe() feeds it one measured phase at a time.
class OnlineRefresh {
 public:
  explicit OnlineRefresh(EnergyModel seed, OnlineRefreshConfig cfg = {});

  /// Installs the identifiability anchor: the (batch) campaign the seed
  /// model was fitted from, accumulated once with forgetting 1.
  void seed_anchor(std::span<const FitSample> campaign);

  /// One in-service measurement: updates the drift EWMA against the current
  /// model's prediction and rank-1-updates the streamed Gram. Non-finite
  /// samples (a NaN energy from a corrupted trace, a non-positive time) are
  /// rejected -- counted, never accumulated -- so one poisoned sample
  /// cannot contaminate the normal equations. Returns drift().
  double observe(const FitSample& s);

  /// Signed EWMA of the relative prediction error; positive = the model
  /// underpredicts (e.g. leakage grew).
  double drift() const { return drift_; }

  /// True when |drift| exceeds the bound and enough observations have
  /// accumulated since the start / the last refresh.
  bool should_refresh() const;

  /// Re-fits from the streamed (plus anchored) normal equations, adopts the
  /// result as the trusted model, and resets the drift EWMA.
  FitResult refresh();

  const EnergyModel& model() const { return model_; }
  const IncrementalGram& gram() const { return gram_; }
  const OnlineRefreshConfig& config() const { return cfg_; }

  struct Stats {
    std::uint64_t observations = 0;  ///< samples accumulated
    std::uint64_t rejected = 0;      ///< non-finite samples dropped
    std::uint64_t refreshes = 0;     ///< re-fits performed
    std::uint64_t last_refresh_observation = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  OnlineRefreshConfig cfg_;
  EnergyModel model_;
  IncrementalGram gram_;
  IncrementalGram anchor_;
  bool has_anchor_ = false;
  double drift_ = 0;
  Stats stats_;
};

/// The zero-op probe kernel: launch overhead only, so its measured energy is
/// (almost) pure pi_0 * T at the probed setting and its design row has zero
/// dynamic columns. Runs for the SoC's kernel overhead (~15 us), far below
/// one PowerMon sample period -- the 2-point-trapezoid path.
hw::Workload idle_probe_workload();

/// Adapts an idle-probe measurement into a regression row, extrapolated to
/// `ref_time_s`. The probe runs for ~15 us, so taken verbatim its row
/// (~1e-4 J) would be invisible next to second-long phase rows in the
/// unweighted least squares and the pi_0 split would stay unidentified.
/// A zero-op row is exactly linear in its duration (every live column is a
/// V * T term, and the energy is p * T), so rescaling to a phase-magnitude
/// reference duration is the measured average power restated over ref_time_s
/// -- not an invented sample. Requires a finite, positive measured duration.
FitSample probe_fit_sample(const hw::Measurement& m, double ref_time_s = 1.0);

/// White-box validation oracle: the prediction table an omniscient per-step
/// re-fit would use -- roofline times plus *ground-truth* energies and pi_0
/// straight from `soc` (at its current leakage scale). Benchmarks and tests
/// score controllers against schedule_phases() on this table; the closed
/// loop itself never calls it.
PhaseGridPrediction oracle_phase_grid(const hw::Soc& soc,
                                      std::span<const hw::Workload> phases,
                                      std::span<const hw::DvfsSetting> grid);

struct ClosedLoopConfig {
  OnlineRefreshConfig online;
  hw::PowerMonConfig meter;
  double time_weight = 0;  ///< chain-DP objective (0 = pure energy)
  bool idle_probe = true;  ///< append a pi_0 probe row each step
  /// Install dead-band: after a refit, the fresh DP schedule replaces the
  /// installed one only if the *new* model predicts at least this relative
  /// improvement from switching. Refits move the coefficients a little
  /// every time (measurement noise, the ground truth's voltage bend that a
  /// linear-in-V pi_0 cannot express); without hysteresis the DP flips
  /// between near-tied settings and the controller thrashes -- paying
  /// transition costs, and occasionally pinning a bias-driven pick.
  double install_deadband = 0.01;
};

/// Reference closed-loop controller for a fixed phase chain: owns the
/// installed chain-DP schedule and an OnlineRefresh. Each step executes the
/// schedule on `soc.with_leakage_scale(leak_scale)` with measurement noise
/// from the caller's stream, observes every phase (plus the rotating idle
/// probe), and on a drift trigger refits + re-runs the DP. Everything is a
/// pure function of (seed model, config, the per-step (leak_scale, stream)
/// arguments), bitwise-identical across OpenMP thread counts.
class ClosedLoopScheduler {
 public:
  ClosedLoopScheduler(EnergyModel seed, hw::Soc soc,
                      std::vector<hw::DvfsSetting> grid,
                      hw::DvfsTransitionModel transitions,
                      std::vector<hw::Workload> phases,
                      ClosedLoopConfig cfg = {});

  /// Installs the seed campaign as the OnlineRefresh identifiability
  /// anchor (see OnlineRefresh::seed_anchor).
  void seed_anchor(std::span<const FitSample> campaign) {
    refresh_.seed_anchor(campaign);
  }

  struct StepReport {
    double leak_scale = 1.0;
    double measured_energy_j = 0;  ///< noisy, what the controller saw
    double measured_time_s = 0;
    double drift = 0;              ///< detector state after the step
    bool refreshed = false;        ///< refit + DP re-run fired this step
  };

  /// One closed-loop step at the given thermal state.
  StepReport step(double leak_scale, const util::RngStream& noise);

  const PhaseSchedule& schedule() const { return schedule_; }
  /// The installed schedule's per-phase settings (grid lookups applied).
  std::span<const hw::DvfsSetting> settings() const { return settings_; }
  const OnlineRefresh& refresh() const { return refresh_; }
  const EnergyModel& model() const { return refresh_.model(); }
  std::span<const hw::Workload> phases() const { return phases_; }

 private:
  void install();  ///< chain DP with the currently trusted model

  hw::Soc soc_;
  std::vector<hw::DvfsSetting> grid_;
  hw::DvfsTransitionModel transitions_;
  std::vector<hw::Workload> phases_;
  ClosedLoopConfig cfg_;
  hw::PowerMon meter_;
  OnlineRefresh refresh_;
  PhaseSchedule schedule_;
  std::vector<hw::DvfsSetting> settings_;
  std::uint64_t steps_ = 0;
};

}  // namespace eroof::model
