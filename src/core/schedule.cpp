#include "core/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "trace/trace.hpp"
#include "util/require.hpp"

namespace eroof::model {
namespace {

/// Transition cost (in objective units: joules, with stalls converted via
/// `time_weight`) of entering grid index `to` from grid index `from`.
double transition_cost(const PhaseGridPrediction& pred,
                       const hw::DvfsTransitionModel& tm, std::size_t from,
                       std::size_t to, double time_weight) {
  const int nd = tm.changed_domains(pred.grid[from], pred.grid[to]);
  if (nd == 0) return 0.0;
  return tm.energy_j * nd +
         tm.latency_s * (pred.const_power_w[to] + time_weight);
}

/// Fills a schedule's predicted totals and switch count from its picks.
void fill_totals(const PhaseGridPrediction& pred,
                 const hw::DvfsTransitionModel& tm, PhaseSchedule* s) {
  s->pred_time_s = 0;
  s->pred_energy_j = 0;
  s->switches = 0;
  for (std::size_t p = 0; p < s->pick.size(); ++p) {
    s->pred_time_s += pred.time_at(p, s->pick[p]);
    s->pred_energy_j += pred.energy_at(p, s->pick[p]);
    if (p > 0) {
      const int nd =
          tm.changed_domains(pred.grid[s->pick[p - 1]], pred.grid[s->pick[p]]);
      if (nd > 0) {
        s->switches += nd;
        s->pred_time_s += tm.latency_s;
        s->pred_energy_j +=
            tm.energy_j * nd + tm.latency_s * pred.const_power_w[s->pick[p]];
      }
    }
  }
}

/// True when schedule `a` is dominated by `b` (no better on either axis,
/// strictly worse on at least one).
bool dominated(const PhaseSchedule& a, const PhaseSchedule& b) {
  return b.pred_time_s <= a.pred_time_s && b.pred_energy_j <= a.pred_energy_j &&
         (b.pred_time_s < a.pred_time_s || b.pred_energy_j < a.pred_energy_j);
}

}  // namespace

PhaseGridPrediction predict_phase_grid(const EnergyModel& model,
                                       const hw::Soc& soc,
                                       std::span<const hw::Workload> phases,
                                       std::span<const hw::DvfsSetting> grid) {
  EROOF_REQUIRE(!phases.empty());
  EROOF_REQUIRE(!grid.empty());
  trace::ScopedSpan span("predict_phase_grid", "model.schedule");

  PhaseGridPrediction pred;
  pred.phase_names.reserve(phases.size());
  for (const auto& w : phases) pred.phase_names.push_back(w.name);
  pred.grid.assign(grid.begin(), grid.end());
  const std::size_t np = phases.size();
  const std::size_t ns = grid.size();
  pred.time_s.resize(np * ns);
  pred.energy_j.resize(np * ns);
  pred.const_power_w.resize(ns);

  for (std::size_t s = 0; s < ns; ++s)
    pred.const_power_w[s] = model.constant_power_w(grid[s]);

  // eroof: hot-begin (per-(phase, setting) prediction grid: disjoint writes)
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t cell = 0; cell < static_cast<std::ptrdiff_t>(np * ns);
       ++cell) {
    const std::size_t p = static_cast<std::size_t>(cell) / ns;
    const std::size_t s = static_cast<std::size_t>(cell) % ns;
    const double t = soc.execution_time(phases[p], grid[s]);
    pred.time_s[cell] = t;
    pred.energy_j[cell] = model.predict_energy_j(phases[p].ops, grid[s], t);
  }
  // eroof: hot-end

  if (span.active()) {
    span.arg("phases", static_cast<double>(np));
    span.arg("settings", static_cast<double>(ns));
  }
  return pred;
}

PhaseSchedule schedule_phases(const PhaseGridPrediction& pred,
                              const hw::DvfsTransitionModel& transitions,
                              double time_weight) {
  const std::size_t np = pred.n_phases();
  const std::size_t ns = pred.n_settings();
  EROOF_REQUIRE(np >= 1 && ns >= 1);
  EROOF_REQUIRE(time_weight >= 0);
  trace::ScopedSpan span("schedule_phases", "model.schedule");

  // dp[s] = minimal objective of phases 0..p with phase p at setting s;
  // back[p * ns + s] = the argmin predecessor setting of that state.
  std::vector<double> dp(ns);
  std::vector<double> next(ns);
  std::vector<std::size_t> back(np * ns, 0);

  // eroof: hot-begin (chain DP over phases x settings^2)
  for (std::size_t s = 0; s < ns; ++s)
    dp[s] = pred.energy_at(0, s) + time_weight * pred.time_at(0, s);

  for (std::size_t p = 1; p < np; ++p) {
    for (std::size_t s = 0; s < ns; ++s) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_prev = 0;
      for (std::size_t q = 0; q < ns; ++q) {
        const double c =
            dp[q] + transition_cost(pred, transitions, q, s, time_weight);
        if (c < best) {
          best = c;
          best_prev = q;
        }
      }
      next[s] = best + pred.energy_at(p, s) + time_weight * pred.time_at(p, s);
      back[p * ns + s] = best_prev;
    }
    std::swap(dp, next);
  }

  std::size_t last = 0;
  for (std::size_t s = 1; s < ns; ++s)
    if (dp[s] < dp[last]) last = s;
  // eroof: hot-end

  PhaseSchedule out;
  out.pick.resize(np);
  out.pick[np - 1] = last;
  for (std::size_t p = np - 1; p > 0; --p)
    out.pick[p - 1] = back[p * ns + out.pick[p]];
  fill_totals(pred, transitions, &out);

  if (span.active()) {
    span.arg("pred_energy_j", out.pred_energy_j);
    span.arg("pred_time_s", out.pred_time_s);
    span.arg("switches", static_cast<double>(out.switches));
  }
  return out;
}

double schedule_objective(const PhaseGridPrediction& pred,
                          const hw::DvfsTransitionModel& transitions,
                          std::span<const std::size_t> pick,
                          double time_weight) {
  EROOF_REQUIRE(pick.size() == pred.n_phases());
  EROOF_REQUIRE(time_weight >= 0);
  double cost = 0;
  for (std::size_t p = 0; p < pick.size(); ++p) {
    EROOF_REQUIRE(pick[p] < pred.n_settings());
    cost += pred.energy_at(p, pick[p]) + time_weight * pred.time_at(p, pick[p]);
    if (p > 0)
      cost += transition_cost(pred, transitions, pick[p - 1], pick[p],
                              time_weight);
  }
  return cost;
}

PhaseSchedule best_uniform_schedule(const PhaseGridPrediction& pred,
                                    double time_weight) {
  const std::size_t np = pred.n_phases();
  const std::size_t ns = pred.n_settings();
  EROOF_REQUIRE(np >= 1 && ns >= 1);

  std::size_t best = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  // eroof: hot-begin (uniform-setting scan)
  for (std::size_t s = 0; s < ns; ++s) {
    double c = 0;
    for (std::size_t p = 0; p < np; ++p)
      c += pred.energy_at(p, s) + time_weight * pred.time_at(p, s);
    if (c < best_cost) {
      best_cost = c;
      best = s;
    }
  }
  // eroof: hot-end

  PhaseSchedule out;
  out.pick.assign(np, best);
  fill_totals(pred, {}, &out);
  return out;
}

PhaseSchedule race_to_halt_schedule(const PhaseGridPrediction& pred) {
  EROOF_REQUIRE(pred.n_phases() >= 1 && pred.n_settings() >= 1);
  std::size_t race = 0;
  for (std::size_t s = 1; s < pred.n_settings(); ++s) {
    const auto& a = pred.grid[race];
    const auto& b = pred.grid[s];
    if (b.core.freq_mhz > a.core.freq_mhz ||
        (b.core.freq_mhz == a.core.freq_mhz &&
         b.mem.freq_mhz > a.mem.freq_mhz))
      race = s;
  }
  PhaseSchedule out;
  out.pick.assign(pred.n_phases(), race);
  fill_totals(pred, {}, &out);
  return out;
}

std::vector<ParetoPoint> pareto_frontier(
    const PhaseGridPrediction& pred, const hw::DvfsTransitionModel& transitions,
    std::span<const double> time_weights) {
  std::vector<ParetoPoint> points;
  points.reserve(time_weights.size());
  for (const double w : time_weights) {
    PhaseSchedule s = schedule_phases(pred, transitions, w);
    const bool duplicate =
        std::any_of(points.begin(), points.end(), [&](const ParetoPoint& p) {
          return p.schedule.pick == s.pick;
        });
    if (!duplicate) points.push_back({w, std::move(s)});
  }

  std::vector<ParetoPoint> frontier;
  frontier.reserve(points.size());
  for (const auto& cand : points) {
    const bool dom =
        std::any_of(points.begin(), points.end(), [&](const ParetoPoint& o) {
          return dominated(cand.schedule, o.schedule);
        });
    if (!dom) frontier.push_back(cand);
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              return a.schedule.pred_time_s < b.schedule.pred_time_s;
            });
  return frontier;
}

ScheduleGroundTruth true_schedule_cost(
    const hw::Soc& soc, std::span<const hw::Workload> phases,
    const PhaseGridPrediction& pred, const PhaseSchedule& sched,
    const hw::DvfsTransitionModel& transitions) {
  EROOF_REQUIRE(phases.size() == sched.pick.size());
  ScheduleGroundTruth out;
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const hw::DvfsSetting& s = pred.grid[sched.pick[p]];
    const double t = soc.execution_time(phases[p], s);
    out.time_s += t;
    out.energy_j += soc.true_energy_j(phases[p], s, t);
    if (p > 0) {
      const hw::DvfsSetting& prev = pred.grid[sched.pick[p - 1]];
      const int nd = transitions.changed_domains(prev, s);
      if (nd > 0) {
        out.time_s += transitions.latency_s;
        out.energy_j += transitions.energy_j * nd +
                        transitions.latency_s * soc.true_constant_power_w(s);
      }
    }
  }
  return out;
}

ScheduleComparison compare_strategies(const EnergyModel& model,
                                      const hw::Soc& soc,
                                      std::span<const hw::Workload> phases,
                                      std::span<const hw::DvfsSetting> grid,
                                      const hw::DvfsTransitionModel& transitions,
                                      double time_weight) {
  const PhaseGridPrediction pred =
      predict_phase_grid(model, soc, phases, grid);
  ScheduleComparison cmp;
  cmp.per_phase = schedule_phases(pred, transitions, time_weight);
  cmp.uniform = best_uniform_schedule(pred, time_weight);
  cmp.race = race_to_halt_schedule(pred);
  cmp.per_phase_true =
      true_schedule_cost(soc, phases, pred, cmp.per_phase, transitions);
  cmp.uniform_true =
      true_schedule_cost(soc, phases, pred, cmp.uniform, transitions);
  cmp.race_true = true_schedule_cost(soc, phases, pred, cmp.race, transitions);
  return cmp;
}

const PhaseSchedule& ScheduleMemo::schedule_for_plan(
    const std::string& plan_key,
    const std::function<PhaseSchedule()>& compute) {
  // Counter bumps happen outside mu_: trace::counter_add acquires the
  // process-wide trace mutex, and holding mu_ across it would stall every
  // other memo lookup behind an unrelated tracing lock. Entries are never
  // removed, so returning a reference read under the lock stays valid.
  {
    const PhaseSchedule* hit = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = memo_.find(plan_key);
      if (it != memo_.end()) hit = it->second.get();
    }
    if (hit != nullptr) {
      trace::counter_add("core.schedule_memo.hit", 1.0);
      return *hit;
    }
  }
  // Compute outside the lock; `compute` is deterministic, so if two threads
  // race on a fresh key both produce the same schedule and the loser's copy
  // is simply dropped.
  auto result = std::make_unique<PhaseSchedule>(compute());
  const PhaseSchedule* out = nullptr;
  bool inserted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto [it, ins] = memo_.try_emplace(plan_key, std::move(result));
    inserted = ins;
    out = it->second.get();
  }
  trace::counter_add(inserted ? "core.schedule_memo.miss"
                              : "core.schedule_memo.hit",
                     1.0);
  return *out;
}

std::size_t ScheduleMemo::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memo_.size();
}

void ScheduleReuse::install(PhaseSchedule schedule,
                            std::span<const double> phase_work) {
  schedule_ = std::move(schedule);
  work0_.assign(phase_work.begin(), phase_work.end());
  ++stats_.installs;
  trace::counter_add("core.schedule_reuse.install", 1.0);
}

double ScheduleReuse::divergence(std::span<const double> phase_work) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (work0_.empty() || phase_work.size() != work0_.size()) return kInf;
  double worst = 0.0;
  // eroof: hot-begin (per-step drift check: relative work divergence)
  for (std::size_t p = 0; p < work0_.size(); ++p) {
    const double w0 = work0_[p];
    const double w = phase_work[p];
    // Non-finite tallies (a NaN from a poisoned counter, an inf from
    // overflow) must read as infinite drift: NaN loses every ordered
    // comparison, so std::max below would silently drop it and
    // needs_retune's `divergence > bound` would stay false forever.
    if (!std::isfinite(w) || !std::isfinite(w0)) return kInf;
    if (w0 == 0.0) {
      if (w != 0.0) return kInf;
      continue;  // a phase with no work then and none now says nothing
    }
    worst = std::max(worst, std::abs(w / w0 - 1.0));
  }
  // eroof: hot-end
  return worst;
}

bool ScheduleReuse::needs_retune(std::span<const double> phase_work) {
  if (work0_.empty() || phase_work.size() != work0_.size()) {
    // No baseline, or one for a different phase structure: the installed
    // schedule cannot even be compared, so the caller must re-install --
    // a different event than drift-triggered re-search, counted apart.
    ++stats_.incompatible;
    trace::counter_add("core.schedule_reuse.incompatible", 1.0);
    return true;
  }
  if (divergence(phase_work) > bound_) {
    ++stats_.retunes;
    trace::counter_add("core.schedule_reuse.retune", 1.0);
    return true;
  }
  ++stats_.reuses;
  return false;
}

}  // namespace eroof::model
