// Autotuning for energy (paper Section II-E): given measurements of a
// workload across the DVFS grid, pick the setting that minimizes energy
// (a) by the fitted model's prediction, and (b) by a "time oracle" that
// simply picks the best-performing setting (the race-to-halt strategy);
// score both against the experimentally measured minimum.
#pragma once

#include <span>
#include <vector>

#include "core/model.hpp"
#include "hw/soc.hpp"

namespace eroof::model {

/// Measurements of one workload across candidate DVFS settings; each
/// setting is measured `repeats` times and averaged (the measured minimum
/// is meaningless if single-shot noise exceeds the separation between
/// settings).
std::vector<hw::Measurement> measure_grid(
    const hw::Soc& soc, const hw::Workload& w,
    std::span<const hw::DvfsSetting> grid, const hw::PowerMon& monitor,
    util::Rng& rng, int repeats = 3);

/// Stream-based grid measurement: every (setting, repeat) run is measured in
/// parallel from its own stream, forked off `root` by (workload name, setting
/// label, repeat index); repeats are then averaged serially in repeat order.
/// Results are bitwise-identical across thread counts and grid iteration
/// order.
std::vector<hw::Measurement> measure_grid(
    const hw::Soc& soc, const hw::Workload& w,
    std::span<const hw::DvfsSetting> grid, const hw::PowerMon& monitor,
    const util::RngStream& root, int repeats = 3);

/// Outcome of tuning one workload.
struct TuneOutcome {
  std::size_t model_idx = 0;   ///< setting the model predicts is best
  std::size_t oracle_idx = 0;  ///< setting the time oracle picks
  std::size_t best_idx = 0;    ///< setting with the lowest *measured* energy
  bool model_correct = false;
  bool oracle_correct = false;
  /// Extra energy (%) the chosen setting dissipated vs the measured minimum.
  double model_lost_pct = 0;
  double oracle_lost_pct = 0;
};

/// Scores model-based and oracle-based selection over grid measurements.
///
/// The model choice minimizes predict_energy_j using each setting's
/// *measured* execution time (the model prices energy given time, per
/// eq. 9). The oracle choice minimizes measured time; candidates within
/// `tie_tol` (relative) of the fastest time count as tied, and the tie goes
/// to the higher frequencies (race-to-halt) -- under measurement noise
/// exact time ties never occur, so an exact comparison would leave the pick
/// dependent on noise order. A choice is "correct"
/// when its measured energy is within `tie_tol` (relative) of the minimum;
/// the default treats settings within 0.5% as indistinguishable -- several
/// ladder points share a voltage (e.g. 68 and 204 MHz memory at 800 mV),
/// producing physically exact energy ties that only measurement noise
/// separates.
TuneOutcome autotune(const EnergyModel& model,
                     std::span<const hw::Measurement> grid,
                     double tie_tol = 5e-3);

}  // namespace eroof::model
