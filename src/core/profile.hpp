// Application energy profiling (paper Section IV): attributes a run's
// predicted energy to instruction classes, memory levels, and constant
// power -- the decompositions behind the paper's Figures 4, 6 and 7.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/model.hpp"

namespace eroof::model {

/// Where a run's energy went, by the model's accounting.
struct EnergyBreakdown {
  /// Dynamic energy per operation class (J); L1 is priced at the SM rate.
  std::array<double, hw::kNumOpClasses> op_energy_j{};
  /// Constant-power energy pi_0 * T (J).
  double constant_j = 0;

  /// Energy of computation instructions (SP + DP + integer).
  double computation_j() const;
  /// Energy of data movement (SM + L1 + L2 + DRAM).
  double data_j() const;
  double total_j() const;
};

/// Prices `ops` executed in `time_s` at setting `s` under `model`.
EnergyBreakdown breakdown(const EnergyModel& model, const hw::OpCounts& ops,
                          const hw::DvfsSetting& s, double time_s);

/// A named program phase with its counter-derived counts and measured time
/// (the FMM evaluator emits one of these per phase).
struct PhaseProfile {
  std::string name;
  hw::OpCounts ops;
  double time_s = 0;
};

/// Aggregates phases into one profile (sums counts and times).
PhaseProfile aggregate(const std::vector<PhaseProfile>& phases,
                       std::string name = "total");

}  // namespace eroof::model
