#include "core/crossval.hpp"

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <string>
#include <unordered_map>

#include "trace/trace.hpp"
#include "util/require.hpp"

namespace eroof::model {
namespace {

// One fold's private scratch and result: the index partition plus the pooled
// per-sample errors, kept separate per fold so folds can run concurrently
// and be concatenated in fold order afterwards.
struct FoldErrors {
  std::vector<double> errors_pct;
};

// Fits on `train` rows, predicts `test` rows. The trace-session residual
// pass inside fit_energy_model is mutex-protected, so this is safe to call
// from parallel fold loops; fold results depend only on the index partition.
FoldErrors run_fold(std::span<const FitSample> samples,
                    std::span<const std::size_t> train,
                    std::span<const std::size_t> test) {
  const FitResult fit = fit_energy_model(samples, train);
  FoldErrors out;
  out.errors_pct = validate(fit.model, samples, test).errors_pct;
  return out;
}

}  // namespace

ValidationReport validate(const EnergyModel& model,
                          std::span<const FitSample> test) {
  EROOF_REQUIRE(!test.empty());
  ValidationReport rep;
  rep.errors_pct.reserve(test.size());
  for (const FitSample& s : test) {
    const double pred = model.predict_energy_j(s.ops, s.setting, s.time_s);
    rep.errors_pct.push_back(util::relative_error_pct(pred, s.energy_j));
  }
  rep.summary = util::summarize(rep.errors_pct);
  return rep;
}

ValidationReport validate(const EnergyModel& model,
                          std::span<const FitSample> samples,
                          std::span<const std::size_t> rows) {
  EROOF_REQUIRE(!rows.empty());
  ValidationReport rep;
  rep.errors_pct.reserve(rows.size());
  for (const std::size_t i : rows) {
    const FitSample& s = samples[i];
    const double pred = model.predict_energy_j(s.ops, s.setting, s.time_s);
    rep.errors_pct.push_back(util::relative_error_pct(pred, s.energy_j));
  }
  rep.summary = util::summarize(rep.errors_pct);
  return rep;
}

ValidationReport holdout_validation(std::span<const FitSample> train,
                                    std::span<const FitSample> test) {
  const FitResult fit = fit_energy_model(train);
  return validate(fit.model, test);
}

ValidationReport kfold_validation(std::span<const FitSample> samples, int k,
                                  util::Rng& rng) {
  EROOF_REQUIRE(k >= 2 && samples.size() >= static_cast<std::size_t>(k));

  // Random permutation (drawn serially, so the fold assignment is a pure
  // function of the incoming RNG state), then contiguous fold slices.
  const std::size_t n = samples.size();
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = perm.size(); i > 1; --i)
    std::swap(perm[i - 1], perm[rng.below(i)]);

  // Each fold's train partition is the permutation with the test slice
  // removed -- an index view, never a copy of the FitSamples themselves.
  // Fold results depend only on the partition, so errors are identical at
  // every thread count; an installed trace session forces serial folds so
  // its order-summed counter totals stay bitwise-reproducible too.
  const bool tracing = trace::session() != nullptr;
  std::vector<FoldErrors> folds(static_cast<std::size_t>(k));
  // eroof: cold (cross-validation folds build their train/test index
  // vectors and refit the model per fold by design)
#pragma omp parallel for schedule(dynamic) if (!tracing)
  for (int fold = 0; fold < k; ++fold) {
    const std::size_t lo = n * static_cast<std::size_t>(fold) /
                           static_cast<std::size_t>(k);
    const std::size_t hi = n * (static_cast<std::size_t>(fold) + 1) /
                           static_cast<std::size_t>(k);
    std::vector<std::size_t> train;
    train.reserve(n - (hi - lo));
    train.insert(train.end(), perm.begin(), perm.begin() + lo);
    train.insert(train.end(), perm.begin() + hi, perm.end());
    const std::span<const std::size_t> test(perm.data() + lo, hi - lo);
    folds[static_cast<std::size_t>(fold)] = run_fold(samples, train, test);
  }

  ValidationReport rep;
  rep.errors_pct.reserve(n);
  for (const FoldErrors& f : folds)
    rep.errors_pct.insert(rep.errors_pct.end(), f.errors_pct.begin(),
                          f.errors_pct.end());
  rep.summary = util::summarize(rep.errors_pct);
  return rep;
}

ValidationReport leave_one_setting_out(std::span<const FitSample> samples) {
  EROOF_REQUIRE(!samples.empty());

  // One pass assigns every sample a group id keyed by its setting label
  // (first-appearance order, matching the paper's setting enumeration);
  // label() -- an ostringstream format -- runs once per sample instead of
  // once per (sample, fold) pair.
  const std::size_t n = samples.size();
  std::vector<std::size_t> gid(n);
  std::vector<std::size_t> group_sizes;
  std::unordered_map<std::string, std::size_t> group_of;
  for (std::size_t i = 0; i < n; ++i) {
    const auto [it, inserted] =
        group_of.try_emplace(samples[i].setting.label(), group_sizes.size());
    if (inserted) group_sizes.push_back(0);
    gid[i] = it->second;
    ++group_sizes[it->second];
  }
  const std::size_t ngroups = group_sizes.size();
  EROOF_REQUIRE_MSG(ngroups >= 2, "need samples from >= 2 settings");

  const bool tracing = trace::session() != nullptr;
  std::vector<FoldErrors> folds(ngroups);
  // eroof: cold (leave-one-group-out folds build their partitions and
  // refit the model per group by design)
#pragma omp parallel for schedule(dynamic) if (!tracing)
  for (std::ptrdiff_t g = 0; g < static_cast<std::ptrdiff_t>(ngroups); ++g) {
    std::vector<std::size_t> train;
    std::vector<std::size_t> test;
    train.reserve(n - group_sizes[static_cast<std::size_t>(g)]);
    test.reserve(group_sizes[static_cast<std::size_t>(g)]);
    for (std::size_t i = 0; i < n; ++i) {
      if (gid[i] == static_cast<std::size_t>(g))
        test.push_back(i);
      else
        train.push_back(i);
    }
    folds[static_cast<std::size_t>(g)] = run_fold(samples, train, test);
  }

  ValidationReport rep;
  rep.errors_pct.reserve(n);
  for (const FoldErrors& f : folds)
    rep.errors_pct.insert(rep.errors_pct.end(), f.errors_pct.begin(),
                          f.errors_pct.end());
  rep.summary = util::summarize(rep.errors_pct);
  return rep;
}

}  // namespace eroof::model
