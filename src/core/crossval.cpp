#include "core/crossval.hpp"

#include <algorithm>
#include <string>
#include <numeric>

#include "util/require.hpp"

namespace eroof::model {

ValidationReport validate(const EnergyModel& model,
                          std::span<const FitSample> test) {
  EROOF_REQUIRE(!test.empty());
  ValidationReport rep;
  rep.errors_pct.reserve(test.size());
  for (const FitSample& s : test) {
    const double pred = model.predict_energy_j(s.ops, s.setting, s.time_s);
    rep.errors_pct.push_back(util::relative_error_pct(pred, s.energy_j));
  }
  rep.summary = util::summarize(rep.errors_pct);
  return rep;
}

ValidationReport holdout_validation(std::span<const FitSample> train,
                                    std::span<const FitSample> test) {
  const FitResult fit = fit_energy_model(train);
  return validate(fit.model, test);
}

ValidationReport kfold_validation(std::span<const FitSample> samples, int k,
                                  util::Rng& rng) {
  EROOF_REQUIRE(k >= 2 && samples.size() >= static_cast<std::size_t>(k));

  // Random permutation, then contiguous fold slices.
  std::vector<std::size_t> perm(samples.size());
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = perm.size(); i > 1; --i)
    std::swap(perm[i - 1], perm[rng.below(i)]);

  ValidationReport rep;
  rep.errors_pct.reserve(samples.size());
  const std::size_t n = samples.size();
  for (int fold = 0; fold < k; ++fold) {
    const std::size_t lo = n * static_cast<std::size_t>(fold) /
                           static_cast<std::size_t>(k);
    const std::size_t hi = n * (static_cast<std::size_t>(fold) + 1) /
                           static_cast<std::size_t>(k);
    std::vector<FitSample> train;
    std::vector<FitSample> test;
    train.reserve(n - (hi - lo));
    test.reserve(hi - lo);
    for (std::size_t i = 0; i < n; ++i) {
      if (i >= lo && i < hi)
        test.push_back(samples[perm[i]]);
      else
        train.push_back(samples[perm[i]]);
    }
    const ValidationReport fold_rep = holdout_validation(train, test);
    rep.errors_pct.insert(rep.errors_pct.end(), fold_rep.errors_pct.begin(),
                          fold_rep.errors_pct.end());
  }
  rep.summary = util::summarize(rep.errors_pct);
  return rep;
}

ValidationReport leave_one_setting_out(std::span<const FitSample> samples) {
  EROOF_REQUIRE(!samples.empty());
  std::vector<std::string> groups;
  for (const FitSample& s : samples) {
    const std::string key = s.setting.label();
    if (std::find(groups.begin(), groups.end(), key) == groups.end())
      groups.push_back(key);
  }
  EROOF_REQUIRE_MSG(groups.size() >= 2, "need samples from >= 2 settings");

  ValidationReport rep;
  rep.errors_pct.reserve(samples.size());
  for (const std::string& held_out : groups) {
    std::vector<FitSample> train;
    std::vector<FitSample> test;
    for (const FitSample& s : samples) {
      if (s.setting.label() == held_out)
        test.push_back(s);
      else
        train.push_back(s);
    }
    const ValidationReport fold_rep = holdout_validation(train, test);
    rep.errors_pct.insert(rep.errors_pct.end(), fold_rep.errors_pct.begin(),
                          fold_rep.errors_pct.end());
  }
  rep.summary = util::summarize(rep.errors_pct);
  return rep;
}

}  // namespace eroof::model
