#include "core/autotune.hpp"

#include <limits>

#include "trace/trace.hpp"
#include "util/require.hpp"

namespace eroof::model {

std::vector<hw::Measurement> measure_grid(
    const hw::Soc& soc, const hw::Workload& w,
    std::span<const hw::DvfsSetting> grid, const hw::PowerMon& monitor,
    util::Rng& rng, int repeats) {
  return measure_grid(soc, w, grid, monitor, util::RngStream(rng()), repeats);
}

std::vector<hw::Measurement> measure_grid(
    const hw::Soc& soc, const hw::Workload& w,
    std::span<const hw::DvfsSetting> grid, const hw::PowerMon& monitor,
    const util::RngStream& root, int repeats) {
  EROOF_REQUIRE(repeats >= 1);
  const std::size_t nruns = grid.size() * static_cast<std::size_t>(repeats);
  std::vector<hw::Measurement> runs(nruns);
  trace::TraceSession* ts = trace::session();
  std::vector<hw::PowerTrace> traces(ts ? nruns : 0);

  const util::RngStream wl_stream = root.fork(w.name);
  std::vector<util::RngStream> setting_streams;
  setting_streams.reserve(grid.size());
  for (const auto& s : grid) setting_streams.push_back(wl_stream.fork(s.label()));

  // eroof: cold (tuning campaign: each run builds its own workload state
  // and power trace; measurement loops are not steady-state evaluate paths)
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t run = 0; run < static_cast<std::ptrdiff_t>(nruns);
       ++run) {
    const std::size_t i = static_cast<std::size_t>(run) /
                          static_cast<std::size_t>(repeats);
    const std::size_t r = static_cast<std::size_t>(run) %
                          static_cast<std::size_t>(repeats);
    const util::RngStream run_stream = setting_streams[i].fork(r);
    runs[run] = soc.run(w, grid[i], monitor, run_stream,
                        ts ? &traces[run] : nullptr);
  }
  if (ts)
    for (const auto& t : traces) hw::PowerMon::mirror_to_session(t);

  // Average repeated runs, as a careful measurement campaign would: the
  // argmin over 105 settings is otherwise dominated by run-to-run noise.
  // Accumulation is serial, in repeat order, so averages replay bit-for-bit.
  // Average power is summed energy over summed time -- NOT the mean of the
  // per-run power ratios, which under heteroscedastic repeat noise drifts
  // from energy/time and breaks energy_j ~= avg_power_w * time_s for the
  // averaged Measurement.
  std::vector<hw::Measurement> ms;
  ms.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    hw::Measurement acc = runs[i * static_cast<std::size_t>(repeats)];
    for (int r = 1; r < repeats; ++r) {
      const auto& m = runs[i * static_cast<std::size_t>(repeats) +
                           static_cast<std::size_t>(r)];
      acc.time_s += m.time_s;
      acc.energy_j += m.energy_j;
    }
    acc.avg_power_w = acc.time_s > 0 ? acc.energy_j / acc.time_s : 0.0;
    acc.time_s /= repeats;
    acc.energy_j /= repeats;
    ms.push_back(std::move(acc));
  }
  return ms;
}

TuneOutcome autotune(const EnergyModel& model,
                     std::span<const hw::Measurement> grid, double tie_tol) {
  EROOF_REQUIRE(!grid.empty());

  trace::ScopedSpan span("autotune", "model.autotune");
  trace::TraceSession* ts = trace::session();

  TuneOutcome out;
  double best_pred = std::numeric_limits<double>::infinity();
  double best_time = std::numeric_limits<double>::infinity();
  double best_energy = std::numeric_limits<double>::infinity();

  for (std::size_t i = 0; i < grid.size(); ++i) {
    const hw::Measurement& m = grid[i];

    const double pred = model.predict_energy_j(m.ops, m.setting, m.time_s);
    if (ts) {
      // Per-candidate predicted vs ground-truth energy, as counter tracks.
      const std::int64_t t = ts->now_us();
      ts->emit_counter("autotune.predicted_j", t, pred);
      ts->emit_counter("autotune.measured_j", t, m.energy_j);
      ts->add_counter_total("autotune.candidates", 1);
    }
    if (pred < best_pred) {
      best_pred = pred;
      out.model_idx = i;
    }

    if (m.time_s < best_time) best_time = m.time_s;

    if (m.energy_j < best_energy) {
      best_energy = m.energy_j;
      out.best_idx = i;
    }
  }

  // Time oracle with race-to-halt tie-breaking: among candidates whose time
  // is within `tie_tol` (relative) of the fastest, take the highest clocks
  // ("run as fast as possible, then turn everything off"). The tolerance
  // mirrors the energy tie rule below: under simulated measurement noise two
  // settings never tie *exactly*, so an exact comparison would make the
  // documented preference dead code and leave the pick to noise order.
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const hw::Measurement& m = grid[i];
    if (m.time_s > best_time * (1.0 + tie_tol)) continue;
    const hw::Measurement& cur = grid[out.oracle_idx];
    const bool in_tie = cur.time_s <= best_time * (1.0 + tie_tol);
    const bool hotter =
        m.setting.core.freq_mhz > cur.setting.core.freq_mhz ||
        (m.setting.core.freq_mhz == cur.setting.core.freq_mhz &&
         m.setting.mem.freq_mhz > cur.setting.mem.freq_mhz);
    if (!in_tie || hotter) out.oracle_idx = i;
  }

  const auto lost_pct = [&](std::size_t idx) {
    // A single-candidate grid (or a degenerate zero-energy minimum, e.g. a
    // grid of zeroed Measurements in a unit test) gives every strategy the
    // same pick; report 0% lost rather than dividing by zero.
    if (idx == out.best_idx || !(best_energy > 0)) return 0.0;
    return 100.0 * (grid[idx].energy_j - best_energy) / best_energy;
  };
  out.model_lost_pct = lost_pct(out.model_idx);
  out.oracle_lost_pct = lost_pct(out.oracle_idx);
  out.model_correct = out.model_lost_pct <= 100.0 * tie_tol;
  out.oracle_correct = out.oracle_lost_pct <= 100.0 * tie_tol;
  if (span.active()) {
    span.arg("candidates", static_cast<double>(grid.size()));
    span.arg("model_idx", static_cast<double>(out.model_idx));
    span.arg("oracle_idx", static_cast<double>(out.oracle_idx));
    span.arg("best_idx", static_cast<double>(out.best_idx));
    span.arg("model_lost_pct", out.model_lost_pct);
    span.arg("oracle_lost_pct", out.oracle_lost_pct);
  }
  return out;
}

}  // namespace eroof::model
