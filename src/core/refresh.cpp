#include "core/refresh.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "trace/trace.hpp"
#include "util/require.hpp"

namespace eroof::model {

IncrementalGram::IncrementalGram(double forgetting)
    : forgetting_(forgetting), gram_(kNumFitColumns, kNumFitColumns) {
  EROOF_REQUIRE_MSG(forgetting > 0 && forgetting <= 1.0,
                    "forgetting factor must be in (0, 1]");
}

void IncrementalGram::add(std::span<const double, kNumFitColumns> row,
                          double energy_j) {
  // Raw views: the hot loops below index flat storage, no bounds-checked
  // Matrix accessors.
  std::span<double> g = gram_.data();
  // eroof: hot-begin (streaming rank-1 update: decay-then-accumulate over
  // the upper triangle, in the batch assembly's exact accumulation order --
  // forgetting == 1 therefore reproduces fit_energy_model bit for bit)
  if (forgetting_ != 1.0) {
    for (std::size_t j = 0; j < kNumFitColumns; ++j)
      for (std::size_t k = j; k < kNumFitColumns; ++k)
        g[j * kNumFitColumns + k] *= forgetting_;
    for (std::size_t j = 0; j < kNumFitColumns; ++j) atb_[j] *= forgetting_;
    btb_ *= forgetting_;
    weight_ *= forgetting_;
  }
  for (std::size_t j = 0; j < kNumFitColumns; ++j) {
    for (std::size_t k = j; k < kNumFitColumns; ++k)
      g[j * kNumFitColumns + k] += row[j] * row[k];
    atb_[j] += row[j] * energy_j;
  }
  btb_ += energy_j * energy_j;
  weight_ += 1.0;
  ++rows_;
  // eroof: hot-end
}

void IncrementalGram::add(const FitSample& s) {
  add(design_row(s), s.energy_j);
}

la::Matrix IncrementalGram::assembled() const {
  la::Matrix g = gram_;
  for (std::size_t j = 0; j < kNumFitColumns; ++j)
    for (std::size_t k = 0; k < j; ++k) g(j, k) = g(k, j);
  return g;
}

FitResult IncrementalGram::fit() const {
  EROOF_REQUIRE_MSG(rows_ > 0, "no rows accumulated");
  return fit_normal_equations(assembled(), atb_, btb_, rows_);
}

FitResult IncrementalGram::fit(const IncrementalGram& anchor,
                               double anchor_fraction) const {
  EROOF_REQUIRE_MSG(rows_ > 0, "no rows accumulated");
  EROOF_REQUIRE(anchor_fraction >= 0);
  if (anchor_fraction == 0 || anchor.weight() <= 0) return fit();
  // Self-normalizing blend: however much evidence either side holds, the
  // anchor enters with anchor_fraction times the live stream's mass.
  const double a = anchor_fraction * weight_ / anchor.weight();
  la::Matrix g = assembled();
  const la::Matrix ga = anchor.assembled();
  for (std::size_t j = 0; j < kNumFitColumns; ++j)
    for (std::size_t k = 0; k < kNumFitColumns; ++k)
      g(j, k) += a * ga(j, k);
  std::array<double, kNumFitColumns> atb = atb_;
  for (std::size_t j = 0; j < kNumFitColumns; ++j)
    atb[j] += a * anchor.atb_[j];
  const double btb = btb_ + a * anchor.btb_;
  return fit_normal_equations(g, atb, btb, rows_ + anchor.rows_);
}

OnlineRefresh::OnlineRefresh(EnergyModel seed, OnlineRefreshConfig cfg)
    : cfg_(cfg),
      model_(seed),
      gram_(cfg.forgetting),
      anchor_(1.0) {
  EROOF_REQUIRE(cfg_.drift_bound > 0);
  EROOF_REQUIRE(cfg_.drift_alpha > 0 && cfg_.drift_alpha <= 1.0);
  EROOF_REQUIRE(cfg_.anchor_weight >= 0);
}

void OnlineRefresh::seed_anchor(std::span<const FitSample> campaign) {
  for (const FitSample& s : campaign) anchor_.add(s);
  has_anchor_ = anchor_.rows() > 0;
}

double OnlineRefresh::observe(const FitSample& s) {
  bool finite = std::isfinite(s.energy_j) && std::isfinite(s.time_s) &&
                s.time_s > 0;
  for (const double c : s.ops.n) finite = finite && std::isfinite(c);
  if (!finite) {
    // A poisoned sample must not touch the normal equations: one NaN row
    // would make every later fit NaN, silently.
    ++stats_.rejected;
    return drift_;
  }
  const double pred = model_.predict_energy_j(s.ops, s.setting, s.time_s);
  // eroof: hot-begin (per-observation drift check: one EWMA update)
  const double denom = std::max(std::abs(s.energy_j), 1e-12);
  const double rel = (s.energy_j - pred) / denom;
  drift_ += cfg_.drift_alpha * (rel - drift_);
  // eroof: hot-end
  gram_.add(s);
  ++stats_.observations;
  return drift_;
}

bool OnlineRefresh::should_refresh() const {
  if (stats_.observations < cfg_.min_observations) return false;
  if (stats_.observations - stats_.last_refresh_observation < cfg_.cooldown)
    return false;
  return std::abs(drift_) > cfg_.drift_bound;
}

FitResult OnlineRefresh::refresh() {
  FitResult r = has_anchor_ ? gram_.fit(anchor_, cfg_.anchor_weight)
                            : gram_.fit();
  model_ = r.model;
  drift_ = 0.0;
  ++stats_.refreshes;
  stats_.last_refresh_observation = stats_.observations;
  trace::counter_add("core.refresh.refits", 1.0);
  return r;
}

hw::Workload idle_probe_workload() {
  hw::Workload w;
  w.name = "pi0_probe";
  return w;  // all counts zero; utilizations at their defaults
}

FitSample probe_fit_sample(const hw::Measurement& m, double ref_time_s) {
  EROOF_REQUIRE(ref_time_s > 0);
  FitSample s = to_fit_sample(m);
  EROOF_REQUIRE_MSG(std::isfinite(s.time_s) && s.time_s > 0,
                    "probe measurement has no usable duration");
  // A zero-op row is linear in its duration, so this is the measured
  // average power restated over the reference window.
  s.energy_j *= ref_time_s / s.time_s;
  s.time_s = ref_time_s;
  return s;
}

PhaseGridPrediction oracle_phase_grid(const hw::Soc& soc,
                                      std::span<const hw::Workload> phases,
                                      std::span<const hw::DvfsSetting> grid) {
  EROOF_REQUIRE(!phases.empty());
  EROOF_REQUIRE(!grid.empty());
  PhaseGridPrediction pred;
  pred.phase_names.reserve(phases.size());
  for (const auto& w : phases) pred.phase_names.push_back(w.name);
  pred.grid.assign(grid.begin(), grid.end());
  const std::size_t np = phases.size();
  const std::size_t ns = grid.size();
  pred.time_s.resize(np * ns);
  pred.energy_j.resize(np * ns);
  pred.const_power_w.resize(ns);
  for (std::size_t s = 0; s < ns; ++s)
    pred.const_power_w[s] = soc.true_constant_power_w(grid[s]);
  for (std::size_t p = 0; p < np; ++p)
    for (std::size_t s = 0; s < ns; ++s) {
      const double t = soc.execution_time(phases[p], grid[s]);
      pred.time_s[p * ns + s] = t;
      pred.energy_j[p * ns + s] = soc.true_energy_j(phases[p], grid[s], t);
    }
  return pred;
}

ClosedLoopScheduler::ClosedLoopScheduler(EnergyModel seed, hw::Soc soc,
                                         std::vector<hw::DvfsSetting> grid,
                                         hw::DvfsTransitionModel transitions,
                                         std::vector<hw::Workload> phases,
                                         ClosedLoopConfig cfg)
    : soc_(std::move(soc)),
      grid_(std::move(grid)),
      transitions_(transitions),
      phases_(std::move(phases)),
      cfg_(cfg),
      meter_(cfg.meter),
      refresh_(seed, cfg.online) {
  EROOF_REQUIRE(!grid_.empty());
  EROOF_REQUIRE(!phases_.empty());
  install();
}

void ClosedLoopScheduler::install() {
  const PhaseGridPrediction pred =
      predict_phase_grid(refresh_.model(), soc_, phases_, grid_);
  PhaseSchedule fresh = schedule_phases(pred, transitions_, cfg_.time_weight);
  if (!schedule_.pick.empty() && cfg_.install_deadband > 0) {
    // Hysteresis: keep the installed schedule unless the refreshed model
    // predicts a real improvement from switching (see ClosedLoopConfig).
    const double cur = schedule_objective(pred, transitions_, schedule_.pick,
                                          cfg_.time_weight);
    const double alt = schedule_objective(pred, transitions_, fresh.pick,
                                          cfg_.time_weight);
    if (alt >= cur * (1.0 - cfg_.install_deadband)) return;
  }
  schedule_ = std::move(fresh);
  settings_.resize(schedule_.pick.size());
  for (std::size_t p = 0; p < settings_.size(); ++p)
    settings_[p] = grid_[schedule_.pick[p]];
}

ClosedLoopScheduler::StepReport ClosedLoopScheduler::step(
    double leak_scale, const util::RngStream& noise) {
  const hw::Soc hot = soc_.with_leakage_scale(leak_scale);
  const hw::SequenceMeasurement seq =
      hot.run_sequence(phases_, settings_, transitions_, meter_, noise);

  StepReport rep;
  rep.leak_scale = leak_scale;
  rep.measured_energy_j = seq.energy_j;
  rep.measured_time_s = seq.time_s;
  for (const hw::Measurement& m : seq.phases)
    rep.drift = refresh_.observe(to_fit_sample(m));
  if (cfg_.idle_probe && !grid_.empty()) {
    // Rotate the probed setting through the *full* grid, not just the
    // schedule's picks: the pi_0 rows must cover voltages the schedule
    // never visits, or the refit cannot extrapolate constant power there.
    const hw::DvfsSetting s = grid_[steps_ % grid_.size()];
    const hw::Measurement m =
        hot.run(idle_probe_workload(), s, meter_, noise.fork("idle"));
    rep.drift = refresh_.observe(probe_fit_sample(m));
  }
  if (refresh_.should_refresh()) {
    refresh_.refresh();
    install();
    rep.refreshed = true;
  }
  ++steps_;
  return rep;
}

}  // namespace eroof::model
