// Per-phase DVFS scheduling (paper Section V, taken one step further).
//
// The paper applies the fitted energy model to the KIFMM's counter-derived
// per-phase profiles to *price* each phase at each setting; this module
// closes the loop and *chooses* the clocks. Given the fitted EnergyModel,
// the per-phase hw::Workloads of an fmm::FmmGpuProfile (or any phase
// sequence) and the 15 x 7 DVFS grid, it
//
//   (a) predicts every (phase, setting) cell's execution time via the SoC
//       roofline timing model and its energy via eq. 9,
//   (b) selects the per-phase setting sequence minimizing predicted energy
//       (optionally energy + lambda * time) under a configurable DVFS
//       transition-cost model -- an exact O(P * S^2) chain dynamic program,
//       so the scheduler learns when switching between UP/U/V/W/X/DOWN is
//       worth the relock stall, and
//   (c) sweeps lambda to emit the energy-vs-time Pareto frontier, plus the
//       uniform-best-setting and race-to-halt baselines every comparison
//       table needs.
//
// Per-kernel DVFS selection is where related work (Calore et al.; Silva et
// al.) finds the real wins over race-to-halt: a phase that leaves one clock
// domain idle can floor that domain's voltage, trimming the
// voltage-dependent constant power pi_0 (eq. 8) even when constant power
// dominates total energy. Validation against the simulator's ground truth
// goes through hw::Soc::run_sequence / true_schedule_cost.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/model.hpp"
#include "hw/soc.hpp"

namespace eroof::model {

/// Dense per-(phase, setting) prediction table, row-major by phase. Times
/// come from the SoC's roofline timing model (utilization-aware, noiseless);
/// energies from the fitted model priced at those times; `const_power_w` is
/// the model's pi_0 per setting, used to price transition stalls.
struct PhaseGridPrediction {
  std::vector<std::string> phase_names;     ///< P phase labels
  std::vector<hw::DvfsSetting> grid;        ///< S candidate settings
  std::vector<double> time_s;               ///< P x S predicted times
  std::vector<double> energy_j;             ///< P x S predicted energies
  std::vector<double> const_power_w;        ///< S modeled pi_0 values

  std::size_t n_phases() const { return phase_names.size(); }
  std::size_t n_settings() const { return grid.size(); }
  double time_at(std::size_t phase, std::size_t setting) const {
    return time_s[phase * grid.size() + setting];
  }
  double energy_at(std::size_t phase, std::size_t setting) const {
    return energy_j[phase * grid.size() + setting];
  }
};

/// Fills the prediction table for `phases` over `grid`. The (phase, setting)
/// cells are independent, so the loop is OpenMP-parallel with disjoint
/// writes -- results are bitwise-identical for every thread count.
PhaseGridPrediction predict_phase_grid(const EnergyModel& model,
                                       const hw::Soc& soc,
                                       std::span<const hw::Workload> phases,
                                       std::span<const hw::DvfsSetting> grid);

/// One scheduled run: the chosen grid index per phase plus predicted totals
/// (both including transition stalls/switch energy).
struct PhaseSchedule {
  std::vector<std::size_t> pick;   ///< per-phase index into the grid
  double pred_time_s = 0;
  double pred_energy_j = 0;
  int switches = 0;                ///< domain switches the schedule pays
};

/// Exact minimizer of  sum_i E(i, pick[i]) + transition costs
///                     + time_weight * (sum_i T(i, pick[i]) + stalls)
/// over all S^P assignments, by dynamic programming over the phase chain.
/// A transition between consecutive differing settings costs the model's
/// fixed switch energy plus the stall priced at the *entered* setting's
/// modeled constant power; `time_weight` (W) converts seconds to joules for
/// the Pareto sweep -- 0 minimizes pure energy. Ties between equal-cost
/// predecessors resolve to the lowest grid index, so the schedule is a pure
/// function of the prediction table.
PhaseSchedule schedule_phases(const PhaseGridPrediction& pred,
                              const hw::DvfsTransitionModel& transitions,
                              double time_weight = 0);

/// The chain objective of an arbitrary assignment under `pred` -- exactly
/// what schedule_phases minimizes. Lets a caller compare an already
/// installed schedule against a fresh DP pick under a *new* prediction
/// table (e.g. the closed loop's install dead-band).
double schedule_objective(const PhaseGridPrediction& pred,
                          const hw::DvfsTransitionModel& transitions,
                          std::span<const std::size_t> pick,
                          double time_weight = 0);

/// The best *uniform* schedule: one setting for every phase (no switches).
/// Returned as a PhaseSchedule with all picks equal.
PhaseSchedule best_uniform_schedule(const PhaseGridPrediction& pred,
                                    double time_weight = 0);

/// Race-to-halt baseline: every phase at the highest core/memory clocks in
/// the grid.
PhaseSchedule race_to_halt_schedule(const PhaseGridPrediction& pred);

/// One energy-vs-time Pareto point: the schedule found at `time_weight`.
struct ParetoPoint {
  double time_weight = 0;
  PhaseSchedule schedule;
};

/// Sweeps `time_weights`, deduplicates identical schedules and drops
/// dominated points; returns the frontier sorted by ascending predicted
/// time (hence descending energy).
std::vector<ParetoPoint> pareto_frontier(const PhaseGridPrediction& pred,
                                         const hw::DvfsTransitionModel& transitions,
                                         std::span<const double> time_weights);

/// Noiseless ground-truth cost of executing `sched` on the simulator:
/// roofline times, true per-phase energies, and the true transition
/// overheads (switch energy + stalls at the entered setting's true pi_0).
/// The measured (noisy) counterpart is hw::Soc::run_sequence.
struct ScheduleGroundTruth {
  double time_s = 0;
  double energy_j = 0;
};
ScheduleGroundTruth true_schedule_cost(const hw::Soc& soc,
                                       std::span<const hw::Workload> phases,
                                       const PhaseGridPrediction& pred,
                                       const PhaseSchedule& sched,
                                       const hw::DvfsTransitionModel& transitions);

/// Everything a paper-Table-V-style comparison row needs: the per-phase
/// schedule vs the uniform model pick vs race-to-halt, each with predicted
/// and ground-truth totals.
struct ScheduleComparison {
  PhaseSchedule per_phase;
  PhaseSchedule uniform;
  PhaseSchedule race;
  ScheduleGroundTruth per_phase_true;
  ScheduleGroundTruth uniform_true;
  ScheduleGroundTruth race_true;
};

ScheduleComparison compare_strategies(const EnergyModel& model,
                                      const hw::Soc& soc,
                                      std::span<const hw::Workload> phases,
                                      std::span<const hw::DvfsSetting> grid,
                                      const hw::DvfsTransitionModel& transitions,
                                      double time_weight = 0);

/// Memoized schedule-DP results keyed by a serving plan key (the string the
/// plan cache keys on: kernel, accuracy, depth, domain). The schedule
/// search -- GPU-profile prediction grid + chain DP -- depends only on the
/// plan, not on one request's points, so its result is cached here and
/// survives plan-cache eviction: a re-built plan skips the search entirely.
///
/// Thread-safe. The first caller for a key computes outside the lock (the
/// search can take milliseconds); racing computations of the same key are
/// harmless because `compute` must be deterministic -- the first insert
/// wins and duplicates are dropped. Returned references are stable for the
/// memo's lifetime (entries are never evicted; distinct plans are few).
class ScheduleMemo {
 public:
  const PhaseSchedule& schedule_for_plan(
      const std::string& plan_key,
      const std::function<PhaseSchedule()>& compute);

  /// Number of memoized keys (observability / tests).
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<PhaseSchedule>> memo_;
};

/// Amortizes the schedule search across a *sequence* of correlated runs --
/// a time-stepping dynamics loop, where consecutive steps' phase workloads
/// drift slowly. The expensive part (GPU-profile replay + prediction grid +
/// chain DP) runs once and is install()ed together with the per-phase
/// structural work it was tuned for; every subsequent step asks
/// needs_retune() with its own work vector, a cheap allocation-free check.
///
/// The drift monitor: at a fixed DVFS setting the roofline-predicted phase
/// time scales linearly in the phase's structural work, so the relative
/// divergence between the time the installed schedule predicted for phase p
/// and the time the current step would actually spend there is
/// |w_p / w0_p - 1|. When the max over phases exceeds `bound`, the
/// installed picks may no longer be energy-optimal and the caller re-runs
/// the search. This is ROADMAP item 4's control-loop trigger specialized to
/// workload drift (model drift plugs into the same hook).
class ScheduleReuse {
 public:
  /// `bound`: maximum tolerated per-phase relative work divergence.
  explicit ScheduleReuse(double bound = 0.10) : bound_(bound) {}

  /// Adopts a freshly searched schedule and the per-phase work (any scalar
  /// proportional to phase time at a fixed setting; the dynamics engine
  /// feeds FmmStats tallies) it was tuned against.
  void install(PhaseSchedule schedule, std::span<const double> phase_work);

  bool installed() const { return !work0_.empty(); }

  /// One step's decision. False: the installed schedule still fits, counted
  /// as a reuse. True: the caller re-searches and install()s the result.
  /// Two distinct causes are counted apart in Stats: an *incompatible*
  /// baseline (nothing installed yet, or the phase count changed -- the
  /// installed schedule cannot even be compared, a re-install is forced)
  /// versus an ordinary *retune* (comparable baseline whose divergence
  /// exceeded the bound). Allocation-free.
  bool needs_retune(std::span<const double> phase_work);

  /// max_p |w_p / w0_p - 1| against the installed work; +inf when a phase
  /// with zero installed work gains work (or nothing is installed), and
  /// also when any work entry -- current or installed -- is non-finite:
  /// NaN loses every comparison, so without the explicit check a poisoned
  /// tally would read as zero divergence and pin the stale schedule forever.
  double divergence(std::span<const double> phase_work) const;

  const PhaseSchedule& schedule() const { return schedule_; }
  double bound() const { return bound_; }

  struct Stats {
    std::uint64_t installs = 0;
    std::uint64_t reuses = 0;
    std::uint64_t retunes = 0;       ///< drift past the bound (comparable)
    std::uint64_t incompatible = 0;  ///< no/mismatched baseline: forced install
  };
  const Stats& stats() const { return stats_; }

 private:
  double bound_;
  PhaseSchedule schedule_;
  std::vector<double> work0_;
  Stats stats_;
};

}  // namespace eroof::model
