// The DVFS-aware energy roofline model (paper Section II-A).
//
// Total energy of a run that executes W flops and Q memory operations in
// time T at core voltage Vp and memory voltage Vm (eq. 9):
//
//   E = W c0p Vp^2 + Q c0m Vm^2 + (c1p Vp + c1m Vm + Pmisc) T
//
// generalized here, as in the paper's actual evaluation (Section II-C), to
// one dynamic-energy coefficient per operation class (SP, DP, integer,
// shared-memory, L2, DRAM). Per-op energies at a setting follow eqs. 6-8:
//   eps_op  = c0[op] * V^2        (V of the op's clock domain)
//   pi_0    = c1p Vp + c1m Vm + Pmisc.
#pragma once

#include <array>

#include "hw/dvfs.hpp"
#include "hw/workload.hpp"

namespace eroof::model {

/// Number of fitted dynamic coefficients. The model prices six classes; L1
/// traffic is charged at the shared-memory coefficient (the paper has no L1
/// microbenchmark either -- both are small on-chip SRAM structures).
inline constexpr std::size_t kNumCoeffs = 6;

/// Indices into the fitted dynamic-coefficient vector.
enum class Coeff : std::size_t {
  kSp = 0,
  kDp = 1,
  kInt = 2,
  kSm = 3,
  kL2 = 4,
  kDram = 5,
};

/// Maps an operation class to the coefficient that prices it.
Coeff coeff_for(hw::OpClass op);

/// Whether a coefficient belongs to the processor or the memory voltage
/// domain (decides which V^2 multiplies it in the design matrix).
bool is_core_coeff(Coeff c);

/// The fitted model: everything eq. 9 needs.
struct EnergyModel {
  /// Dynamic coefficients c0[k] in J/V^2 (per op of class k).
  std::array<double, kNumCoeffs> c0{};
  /// Leakage slopes (W/V) and residual constant power (W).
  double c1_proc = 0;
  double c1_mem = 0;
  double p_misc = 0;

  /// Energy per operation (J) of class `op` at setting `s` (eqs. 6-7).
  double op_energy_j(hw::OpClass op, const hw::DvfsSetting& s) const;

  /// Constant power pi_0 (W) at setting `s` (eq. 8).
  double constant_power_w(const hw::DvfsSetting& s) const;

  /// Predicted total energy (J) of a run with counts `ops` taking `time_s`
  /// at setting `s` (eq. 9, per-class form).
  double predict_energy_j(const hw::OpCounts& ops, const hw::DvfsSetting& s,
                          double time_s) const;

  /// Dynamic-energy part only (no constant-power term).
  double predict_dynamic_energy_j(const hw::OpCounts& ops,
                                  const hw::DvfsSetting& s) const;
};

}  // namespace eroof::model
