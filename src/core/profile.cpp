#include "core/profile.hpp"

#include "util/require.hpp"

namespace eroof::model {

double EnergyBreakdown::computation_j() const {
  using hw::OpClass;
  return op_energy_j[static_cast<std::size_t>(OpClass::kSpFlop)] +
         op_energy_j[static_cast<std::size_t>(OpClass::kDpFlop)] +
         op_energy_j[static_cast<std::size_t>(OpClass::kIntOp)];
}

double EnergyBreakdown::data_j() const {
  using hw::OpClass;
  return op_energy_j[static_cast<std::size_t>(OpClass::kSmAccess)] +
         op_energy_j[static_cast<std::size_t>(OpClass::kL1Access)] +
         op_energy_j[static_cast<std::size_t>(OpClass::kL2Access)] +
         op_energy_j[static_cast<std::size_t>(OpClass::kDramAccess)];
}

double EnergyBreakdown::total_j() const {
  return computation_j() + data_j() + constant_j;
}

EnergyBreakdown breakdown(const EnergyModel& model, const hw::OpCounts& ops,
                          const hw::DvfsSetting& s, double time_s) {
  EROOF_REQUIRE(time_s > 0);
  EnergyBreakdown b;
  for (std::size_t i = 0; i < hw::kNumOpClasses; ++i) {
    const auto op = static_cast<hw::OpClass>(i);
    b.op_energy_j[i] = ops.n[i] * model.op_energy_j(op, s);
  }
  b.constant_j = model.constant_power_w(s) * time_s;
  return b;
}

PhaseProfile aggregate(const std::vector<PhaseProfile>& phases,
                       std::string name) {
  PhaseProfile total;
  total.name = std::move(name);
  for (const auto& p : phases) {
    total.ops += p.ops;
    total.time_s += p.time_s;
  }
  return total;
}

}  // namespace eroof::model
