#include "core/timemodel.hpp"

#include <cmath>
#include <limits>

#include "linalg/matrix.hpp"
#include "linalg/nnls.hpp"
#include "util/require.hpp"

namespace eroof::model {
namespace {

/// NNLS fit of core-side cycles-per-op on the samples currently classified
/// as compute-bound: T * f_core = sum_c n_c x_c.
std::array<double, kNumCoeffs> fit_core(
    std::span<const FitSample> samples, std::span<const std::size_t> idx) {
  la::Matrix a(idx.size(), kNumCoeffs);
  std::vector<double> b(idx.size());
  for (std::size_t r = 0; r < idx.size(); ++r) {
    const FitSample& s = samples[idx[r]];
    for (std::size_t k = 0; k < hw::kNumOpClasses; ++k) {
      const auto c =
          static_cast<std::size_t>(coeff_for(static_cast<hw::OpClass>(k)));
      if (!is_core_coeff(static_cast<Coeff>(c))) continue;
      a(r, c) += s.ops.n[k];
    }
    b[r] = s.time_s * s.setting.core.freq_hz();
  }
  // Equilibrate columns (counts differ by orders of magnitude).
  std::array<double, kNumCoeffs> scale{};
  for (std::size_t j = 0; j < kNumCoeffs; ++j) {
    double ss = 0;
    for (std::size_t r = 0; r < idx.size(); ++r) ss += a(r, j) * a(r, j);
    scale[j] = ss > 0 ? std::sqrt(ss) : 1.0;
    for (std::size_t r = 0; r < idx.size(); ++r) a(r, j) /= scale[j];
  }
  const auto sol = la::nnls(a, b);
  std::array<double, kNumCoeffs> x{};
  for (std::size_t j = 0; j < kNumCoeffs; ++j) x[j] = sol.x[j] / scale[j];
  return x;
}

/// Least-squares slope through the origin for the memory side:
/// T * f_mem = n_dram * x_mem.
double fit_mem(std::span<const FitSample> samples,
               std::span<const std::size_t> idx) {
  double num = 0;
  double den = 0;
  for (const std::size_t i : idx) {
    const FitSample& s = samples[i];
    const double n = s.ops[hw::OpClass::kDramAccess];
    num += n * s.time_s * s.setting.mem.freq_hz();
    den += n * n;
  }
  return den > 0 ? num / den : 0.0;
}

}  // namespace

double TimeModel::core_cycles(const hw::OpCounts& ops) const {
  double cycles = 0;
  for (std::size_t k = 0; k < hw::kNumOpClasses; ++k) {
    const auto c = coeff_for(static_cast<hw::OpClass>(k));
    if (!is_core_coeff(c)) continue;
    cycles += ops.n[k] * core_cycles_per_op[static_cast<std::size_t>(c)];
  }
  return cycles;
}

double TimeModel::predict_time_s(const hw::OpCounts& ops,
                                 const hw::DvfsSetting& s) const {
  const double t_core = core_cycles(ops) / s.core.freq_hz();
  const double t_mem =
      ops[hw::OpClass::kDramAccess] * mem_cycles_per_word / s.mem.freq_hz();
  return std::max(t_core, t_mem);
}

TimeFitResult fit_time_model(std::span<const FitSample> samples) {
  EROOF_REQUIRE(samples.size() >= 2 * kNumFitColumns);

  // Start from everything-compute-bound and alternate.
  std::vector<bool> mem_bound(samples.size(), false);
  TimeFitResult out;
  constexpr int kMaxSweeps = 20;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    std::vector<std::size_t> core_idx;
    std::vector<std::size_t> mem_idx;
    for (std::size_t i = 0; i < samples.size(); ++i)
      (mem_bound[i] ? mem_idx : core_idx).push_back(i);
    // Keep both sides identifiable even if classification collapses.
    if (core_idx.empty() || mem_idx.empty()) {
      core_idx.resize(samples.size());
      mem_idx.resize(samples.size());
      for (std::size_t i = 0; i < samples.size(); ++i)
        core_idx[i] = mem_idx[i] = i;
    }

    out.model.core_cycles_per_op = fit_core(samples, core_idx);
    out.model.mem_cycles_per_word = fit_mem(samples, mem_idx);
    ++out.iterations;

    bool changed = false;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const FitSample& s = samples[i];
      const double t_core =
          out.model.core_cycles(s.ops) / s.setting.core.freq_hz();
      const double t_mem = s.ops[hw::OpClass::kDramAccess] *
                           out.model.mem_cycles_per_word /
                           s.setting.mem.freq_hz();
      const bool now_mem = t_mem > t_core;
      if (now_mem != mem_bound[i]) {
        mem_bound[i] = now_mem;
        changed = true;
      }
    }
    if (!changed) {
      out.converged = true;
      break;
    }
  }
  return out;
}

std::size_t predict_best_setting(const EnergyModel& energy,
                                 const TimeModel& time,
                                 const hw::OpCounts& ops,
                                 std::span<const hw::DvfsSetting> grid) {
  EROOF_REQUIRE(!grid.empty());
  std::size_t best = 0;
  double best_e = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double t = time.predict_time_s(ops, grid[i]);
    if (t <= 0) continue;
    const double e = energy.predict_energy_j(ops, grid[i], t);
    if (e < best_e) {
      best_e = e;
      best = i;
    }
  }
  return best;
}

}  // namespace eroof::model
