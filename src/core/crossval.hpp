// Cross-validation of the fitted model (paper Section II-D): the 2-fold
// "holdout" split by Table I's T/V setting roles, and k-fold CV over random
// partitions to estimate generalization error.
#pragma once

#include <span>
#include <vector>

#include "core/fit.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace eroof::model {

/// Per-sample relative prediction errors (%) plus their summary.
struct ValidationReport {
  std::vector<double> errors_pct;
  util::Summary summary;
};

/// Predicts each sample in `test` with `model` and reports |pred-meas|/meas.
ValidationReport validate(const EnergyModel& model,
                          std::span<const FitSample> test);

/// Subset variant: predicts samples[rows[0]], samples[rows[1]], ... in that
/// order, without copying FitSamples. Used by the CV drivers, which carve
/// train/test index partitions out of one scratch buffer per fold.
ValidationReport validate(const EnergyModel& model,
                          std::span<const FitSample> samples,
                          std::span<const std::size_t> rows);

/// 2-fold holdout: fit on `train`, validate on `test` (the paper trains on
/// the 8 "T" settings and validates on the 8 "V" settings).
ValidationReport holdout_validation(std::span<const FitSample> train,
                                    std::span<const FitSample> test);

/// k-fold cross-validation: partitions `samples` into k random folds, fits
/// on k-1, predicts the held-out fold; pools all per-sample errors.
ValidationReport kfold_validation(std::span<const FitSample> samples, int k,
                                  util::Rng& rng);

/// Leave-one-group-out cross-validation with folds keyed by DVFS setting:
/// each fold holds out every sample of one setting and predicts it from a
/// model fitted on the remaining settings. With the paper's 16 settings this
/// is its "16-fold cross validation" -- it measures generalization to
/// *unseen voltage/frequency points*, which is why its error exceeds the
/// simple holdout's.
ValidationReport leave_one_setting_out(std::span<const FitSample> samples);

}  // namespace eroof::model
