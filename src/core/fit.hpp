// Model instantiation (paper Section II-C): builds the regression problem
// linking measured run energies to operation counts, execution times, and
// voltages, and solves it with non-negative least squares.
//
// One sample is one measured run. Its design row has nine columns:
//   [ W_sp Vp^2, W_dp Vp^2, W_int Vp^2, (Q_sm + Q_l1) Vp^2, Q_l2 Vp^2,
//     Q_dram Vm^2,  T Vp,  T Vm,  T ]
// whose coefficients are, respectively, the six dynamic energy constants
// c0 (eqs. 6-7), the two leakage slopes c1 and Pmisc (eq. 8). All nine are
// physical energies/powers, hence the non-negativity constraint.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "core/model.hpp"
#include "hw/soc.hpp"
#include "linalg/matrix.hpp"

namespace eroof::model {

/// Columns of the design matrix: the six c0, then c1_proc, c1_mem, p_misc.
inline constexpr std::size_t kNumFitColumns = kNumCoeffs + 3;

/// One regression sample.
struct FitSample {
  hw::OpCounts ops;
  hw::DvfsSetting setting;
  double time_s = 0;
  double energy_j = 0;
};

/// Adapts a platform measurement into a regression sample.
FitSample to_fit_sample(const hw::Measurement& m);

/// The design row for one sample (exposed for tests).
std::array<double, kNumFitColumns> design_row(const FitSample& s);

/// Outcome of a fit.
struct FitResult {
  EnergyModel model;
  double residual_norm = 0;   ///< ||A x - E|| over the training set (J)
  std::size_t n_samples = 0;
  bool converged = false;
};

/// Fits the DVFS-aware model to `samples` by NNLS. Columns are normalized
/// to unit Euclidean length before the solve (counts are ~1e8 while T is
/// ~1e-1; without scaling the active-set tolerance is meaningless) and the
/// coefficients un-scaled afterwards.
///
/// The solve runs on the normal equations: one pass accumulates the 9x9
/// Gram matrix (each design row computed exactly once per sample), then
/// la::nnls_gram iterates with O(k^3) Cholesky passive-set solves -- far
/// cheaper than per-iteration QR over all m samples when m is in the
/// thousands.
FitResult fit_energy_model(std::span<const FitSample> samples);

/// Fits on the subset samples[rows[0]], samples[rows[1]], ... without
/// materializing a per-fold copy of the samples. Cross-validation partitions
/// index scratch instead of copying FitSamples; results for a given subset
/// are identical to fitting the copied subset.
FitResult fit_energy_model(std::span<const FitSample> samples,
                           std::span<const std::size_t> rows);

/// Solves an already-assembled normal-equation system -- the
/// kNumFitColumns^2 Gram matrix (fully mirrored), A^T b, and b^T b -- by the
/// same column equilibration + la::nnls_gram pass the batch fit uses, and
/// unpacks the un-scaled coefficients into an EnergyModel.
///
/// Both fit paths land here: `fit_energy_model` after its sample-assembly
/// pass, and the streaming refresh path (core/refresh) with an incrementally
/// maintained Gram. Because equilibration and solve are shared, an
/// incremental accumulation with forgetting factor 1 reproduces the batch
/// fit bit for bit. `n_samples` is carried into the result for reporting
/// only; it does not affect the solve.
FitResult fit_normal_equations(const la::Matrix& gram,
                               std::span<const double> atb, double btb,
                               std::size_t n_samples);

}  // namespace eroof::model
