#include "core/fit.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/matrix.hpp"
#include "linalg/nnls.hpp"
#include "trace/trace.hpp"
#include "util/require.hpp"

namespace eroof::model {

FitSample to_fit_sample(const hw::Measurement& m) {
  return FitSample{m.ops, m.setting, m.time_s, m.energy_j};
}

std::array<double, kNumFitColumns> design_row(const FitSample& s) {
  const double vp = s.setting.core.volt_v();
  const double vm = s.setting.mem.volt_v();
  const double vp2 = vp * vp;
  const double vm2 = vm * vm;
  const hw::OpCounts& n = s.ops;
  using hw::OpClass;

  std::array<double, kNumFitColumns> row{};
  row[static_cast<std::size_t>(Coeff::kSp)] = n[OpClass::kSpFlop] * vp2;
  row[static_cast<std::size_t>(Coeff::kDp)] = n[OpClass::kDpFlop] * vp2;
  row[static_cast<std::size_t>(Coeff::kInt)] = n[OpClass::kIntOp] * vp2;
  row[static_cast<std::size_t>(Coeff::kSm)] =
      (n[OpClass::kSmAccess] + n[OpClass::kL1Access]) * vp2;
  row[static_cast<std::size_t>(Coeff::kL2)] = n[OpClass::kL2Access] * vp2;
  row[static_cast<std::size_t>(Coeff::kDram)] = n[OpClass::kDramAccess] * vm2;
  row[kNumCoeffs + 0] = s.time_s * vp;
  row[kNumCoeffs + 1] = s.time_s * vm;
  row[kNumCoeffs + 2] = s.time_s;
  return row;
}

FitResult fit_energy_model(std::span<const FitSample> samples) {
  EROOF_REQUIRE_MSG(samples.size() >= kNumFitColumns,
                    "need at least as many samples as fit columns");
  const std::size_t m = samples.size();

  la::Matrix a(m, kNumFitColumns);
  std::vector<double> b(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto row = design_row(samples[i]);
    for (std::size_t j = 0; j < kNumFitColumns; ++j) a(i, j) = row[j];
    b[i] = samples[i].energy_j;
  }

  // Column equilibration.
  std::array<double, kNumFitColumns> scale{};
  for (std::size_t j = 0; j < kNumFitColumns; ++j) {
    double ss = 0;
    for (std::size_t i = 0; i < m; ++i) ss += a(i, j) * a(i, j);
    scale[j] = ss > 0 ? std::sqrt(ss) : 1.0;
    for (std::size_t i = 0; i < m; ++i) a(i, j) /= scale[j];
  }

  const la::NnlsResult sol = la::nnls(a, b, 1e-10);

  FitResult out;
  out.n_samples = m;
  out.converged = sol.converged;
  out.residual_norm = sol.residual_norm;
  std::array<double, kNumFitColumns> x{};
  for (std::size_t j = 0; j < kNumFitColumns; ++j)
    x[j] = sol.x[j] / scale[j];

  for (std::size_t j = 0; j < kNumCoeffs; ++j) out.model.c0[j] = x[j];
  out.model.c1_proc = x[kNumCoeffs + 0];
  out.model.c1_mem = x[kNumCoeffs + 1];
  out.model.p_misc = x[kNumCoeffs + 2];

  // Record the fitted model's per-sample residuals (predicted minus
  // measured energy, via the un-scaled coefficients) so a trace aligns fit
  // quality with the campaign that produced the samples.
  if (trace::TraceSession* ts = trace::session()) {
    trace::ScopedSpan span("fit_energy_model", "model.fit");
    double max_abs = 0;
    for (std::size_t i = 0; i < m; ++i) {
      const auto row = design_row(samples[i]);
      double pred = 0;
      for (std::size_t j = 0; j < kNumFitColumns; ++j) pred += row[j] * x[j];
      const double resid = pred - samples[i].energy_j;
      max_abs = std::max(max_abs, std::abs(resid));
      ts->emit_counter("fit.residual_j", ts->now_us(), resid);
    }
    span.arg("n_samples", static_cast<double>(m));
    span.arg("residual_norm_j", out.residual_norm);
    span.arg("max_abs_residual_j", max_abs);
    span.arg("converged", out.converged ? 1.0 : 0.0);
    ts->add_counter_total("fit.n_samples", static_cast<double>(m));
    ts->add_counter_total("fit.max_abs_residual_j", max_abs);
  }
  return out;
}

}  // namespace eroof::model
