#include "core/fit.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/matrix.hpp"
#include "linalg/nnls.hpp"
#include "trace/trace.hpp"
#include "util/require.hpp"

namespace eroof::model {

FitSample to_fit_sample(const hw::Measurement& m) {
  return FitSample{m.ops, m.setting, m.time_s, m.energy_j};
}

std::array<double, kNumFitColumns> design_row(const FitSample& s) {
  const double vp = s.setting.core.volt_v();
  const double vm = s.setting.mem.volt_v();
  const double vp2 = vp * vp;
  const double vm2 = vm * vm;
  const hw::OpCounts& n = s.ops;
  using hw::OpClass;

  std::array<double, kNumFitColumns> row{};
  row[static_cast<std::size_t>(Coeff::kSp)] = n[OpClass::kSpFlop] * vp2;
  row[static_cast<std::size_t>(Coeff::kDp)] = n[OpClass::kDpFlop] * vp2;
  row[static_cast<std::size_t>(Coeff::kInt)] = n[OpClass::kIntOp] * vp2;
  row[static_cast<std::size_t>(Coeff::kSm)] =
      (n[OpClass::kSmAccess] + n[OpClass::kL1Access]) * vp2;
  row[static_cast<std::size_t>(Coeff::kL2)] = n[OpClass::kL2Access] * vp2;
  row[static_cast<std::size_t>(Coeff::kDram)] = n[OpClass::kDramAccess] * vm2;
  row[kNumCoeffs + 0] = s.time_s * vp;
  row[kNumCoeffs + 1] = s.time_s * vm;
  row[kNumCoeffs + 2] = s.time_s;
  return row;
}

namespace {

// Shared implementation: fits on samples[rows[i]] for every i. One pass per
// sample computes its design row exactly once, accumulating the normal
// equations (Gram matrix, A^T b, b^T b) row-major; when a trace session is
// installed the rows are additionally stashed so the residual pass reuses
// them instead of rebuilding each row a second time.
FitResult fit_on_rows(std::span<const FitSample> samples,
                      std::span<const std::size_t> rows) {
  EROOF_REQUIRE_MSG(rows.size() >= kNumFitColumns,
                    "need at least as many samples as fit columns");
  const std::size_t m = rows.size();
  trace::TraceSession* ts = trace::session();

  la::Matrix gram(kNumFitColumns, kNumFitColumns);
  std::array<double, kNumFitColumns> atb{};
  double btb = 0;
  std::vector<std::array<double, kNumFitColumns>> stash;
  if (ts) stash.reserve(m);

  for (std::size_t i = 0; i < m; ++i) {
    const FitSample& s = samples[rows[i]];
    const auto row = design_row(s);
    for (std::size_t j = 0; j < kNumFitColumns; ++j) {
      for (std::size_t k = j; k < kNumFitColumns; ++k)
        gram(j, k) += row[j] * row[k];
      atb[j] += row[j] * s.energy_j;
    }
    btb += s.energy_j * s.energy_j;
    if (ts) stash.push_back(row);
  }
  for (std::size_t j = 0; j < kNumFitColumns; ++j)
    for (std::size_t k = 0; k < j; ++k) gram(j, k) = gram(k, j);

  const FitResult out = fit_normal_equations(gram, atb, btb, m);
  std::array<double, kNumFitColumns> x{};
  for (std::size_t j = 0; j < kNumCoeffs; ++j) x[j] = out.model.c0[j];
  x[kNumCoeffs + 0] = out.model.c1_proc;
  x[kNumCoeffs + 1] = out.model.c1_mem;
  x[kNumCoeffs + 2] = out.model.p_misc;

  // Record the fitted model's per-sample residuals (predicted minus
  // measured energy, via the un-scaled coefficients) so a trace aligns fit
  // quality with the campaign that produced the samples. Rows come from the
  // assembly-pass stash; nothing is recomputed.
  if (ts) {
    trace::ScopedSpan span("fit_energy_model", "model.fit");
    double max_abs = 0;
    for (std::size_t i = 0; i < m; ++i) {
      const auto& row = stash[i];
      double pred = 0;
      for (std::size_t j = 0; j < kNumFitColumns; ++j) pred += row[j] * x[j];
      const double resid = pred - samples[rows[i]].energy_j;
      max_abs = std::max(max_abs, std::abs(resid));
      ts->emit_counter("fit.residual_j", ts->now_us(), resid);
    }
    span.arg("n_samples", static_cast<double>(m));
    span.arg("residual_norm_j", out.residual_norm);
    span.arg("max_abs_residual_j", max_abs);
    span.arg("converged", out.converged ? 1.0 : 0.0);
    ts->add_counter_total("fit.n_samples", static_cast<double>(m));
    ts->add_counter_total("fit.max_abs_residual_j", max_abs);
  }
  return out;
}

}  // namespace

FitResult fit_normal_equations(const la::Matrix& gram,
                               std::span<const double> atb, double btb,
                               std::size_t n_samples) {
  EROOF_REQUIRE(gram.rows() == kNumFitColumns &&
                gram.cols() == kNumFitColumns);
  EROOF_REQUIRE(atb.size() == kNumFitColumns);

  // Column equilibration, read straight off the Gram diagonal:
  // ||col_j||_2 = sqrt(G[j][j]). Scaling maps G'ij = Gij/(si sj),
  // (A^T b)'j = (A^T b)j / sj; b^T b is scale-free.
  std::array<double, kNumFitColumns> scale{};
  for (std::size_t j = 0; j < kNumFitColumns; ++j)
    scale[j] = gram(j, j) > 0 ? std::sqrt(gram(j, j)) : 1.0;
  la::Matrix gram_scaled(kNumFitColumns, kNumFitColumns);
  std::array<double, kNumFitColumns> atb_scaled{};
  for (std::size_t j = 0; j < kNumFitColumns; ++j) {
    for (std::size_t k = 0; k < kNumFitColumns; ++k)
      gram_scaled(j, k) = gram(j, k) / (scale[j] * scale[k]);
    atb_scaled[j] = atb[j] / scale[j];
  }

  const la::NnlsResult sol = la::nnls_gram(gram_scaled, atb_scaled, btb, 1e-10);

  FitResult out;
  out.n_samples = n_samples;
  out.converged = sol.converged;
  out.residual_norm = sol.residual_norm;
  std::array<double, kNumFitColumns> x{};
  for (std::size_t j = 0; j < kNumFitColumns; ++j)
    x[j] = sol.x[j] / scale[j];

  for (std::size_t j = 0; j < kNumCoeffs; ++j) out.model.c0[j] = x[j];
  out.model.c1_proc = x[kNumCoeffs + 0];
  out.model.c1_mem = x[kNumCoeffs + 1];
  out.model.p_misc = x[kNumCoeffs + 2];
  return out;
}

FitResult fit_energy_model(std::span<const FitSample> samples) {
  std::vector<std::size_t> all(samples.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return fit_on_rows(samples, all);
}

FitResult fit_energy_model(std::span<const FitSample> samples,
                           std::span<const std::size_t> rows) {
  return fit_on_rows(samples, rows);
}

}  // namespace eroof::model
