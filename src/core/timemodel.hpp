// Semi-empirical execution-time model (extension beyond the paper).
//
// Eq. 9 prices energy *given* a measured execution time T, so the paper's
// autotuner still has to run the workload at every candidate setting. This
// module fits a roofline time model from the same campaign:
//
//   T_hat = max( sum_c n_c x_c / f_core ,  n_dram x_mem / f_mem )
//
// where x_c are effective cycles-per-operation of the core-side classes and
// x_mem of DRAM words. The max() makes the fit non-linear; we solve it by
// alternating classification (assign each sample to the side that binds it,
// fit each side by NNLS, repeat to a fixpoint -- a tiny EM-style loop).
//
// Together with the energy model this enables *predictive* autotuning:
// pick argmin_s E_hat(ops, s, T_hat(ops, s)) with no grid measurements at
// all (see bench/ext_predictive_autotune).
#pragma once

#include <array>
#include <span>

#include "core/fit.hpp"

namespace eroof::model {

/// The fitted time model.
struct TimeModel {
  /// Effective cycles per operation for the core-side classes, indexed by
  /// Coeff (the kDram slot is unused on the core side).
  std::array<double, kNumCoeffs> core_cycles_per_op{};
  /// Effective memory cycles per DRAM word.
  double mem_cycles_per_word = 0;

  /// Core-side cycle count of a workload.
  double core_cycles(const hw::OpCounts& ops) const;

  /// Predicted execution time at a setting (roofline max of both sides).
  double predict_time_s(const hw::OpCounts& ops,
                        const hw::DvfsSetting& s) const;
};

/// Outcome of the alternating fit.
struct TimeFitResult {
  TimeModel model;
  int iterations = 0;       ///< classification sweeps until fixpoint
  bool converged = false;   ///< fixpoint reached within the iteration cap
};

/// Fits the time model to campaign samples (uses each sample's ops, setting
/// and measured time; energies are ignored).
TimeFitResult fit_time_model(std::span<const FitSample> samples);

/// Predictive autotuning: the grid setting minimizing the *predicted*
/// energy at the *predicted* time. Returns the index into `grid`.
std::size_t predict_best_setting(const EnergyModel& energy,
                                 const TimeModel& time,
                                 const hw::OpCounts& ops,
                                 std::span<const hw::DvfsSetting> grid);

}  // namespace eroof::model
