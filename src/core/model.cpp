#include "core/model.hpp"

#include "util/require.hpp"

namespace eroof::model {

Coeff coeff_for(hw::OpClass op) {
  using hw::OpClass;
  switch (op) {
    case OpClass::kSpFlop: return Coeff::kSp;
    case OpClass::kDpFlop: return Coeff::kDp;
    case OpClass::kIntOp: return Coeff::kInt;
    case OpClass::kSmAccess: return Coeff::kSm;
    case OpClass::kL1Access: return Coeff::kSm;  // priced like shared memory
    case OpClass::kL2Access: return Coeff::kL2;
    case OpClass::kDramAccess: return Coeff::kDram;
    case OpClass::kCount: break;
  }
  EROOF_REQUIRE_MSG(false, "bad OpClass");
  return Coeff::kSp;
}

bool is_core_coeff(Coeff c) { return c != Coeff::kDram; }

double EnergyModel::op_energy_j(hw::OpClass op,
                                const hw::DvfsSetting& s) const {
  const Coeff c = coeff_for(op);
  const double v = is_core_coeff(c) ? s.core.volt_v() : s.mem.volt_v();
  return c0[static_cast<std::size_t>(c)] * v * v;
}

double EnergyModel::constant_power_w(const hw::DvfsSetting& s) const {
  return c1_proc * s.core.volt_v() + c1_mem * s.mem.volt_v() + p_misc;
}

double EnergyModel::predict_dynamic_energy_j(const hw::OpCounts& ops,
                                             const hw::DvfsSetting& s) const {
  double e = 0;
  for (std::size_t i = 0; i < hw::kNumOpClasses; ++i) {
    const auto op = static_cast<hw::OpClass>(i);
    e += ops.n[i] * op_energy_j(op, s);
  }
  return e;
}

double EnergyModel::predict_energy_j(const hw::OpCounts& ops,
                                     const hw::DvfsSetting& s,
                                     double time_s) const {
  EROOF_REQUIRE(time_s > 0);
  return predict_dynamic_energy_j(ops, s) + constant_power_w(s) * time_s;
}

}  // namespace eroof::model
