#include "hw/powermon.hpp"

#include <algorithm>
#include <cmath>

#include "trace/trace.hpp"
#include "util/require.hpp"

namespace eroof::hw {
namespace {

/// energy / duration, except for a zero-duration probe where that is 0/0:
/// there the sample mean is the only sensible reading, and for the 2-point
/// trapezoid it coincides with lim_{d->0} energy(d)/d. Keeps avg_power_w
/// finite for every accepted duration.
double average_power(double energy_j, double duration_s,
                     const std::vector<double>& samples_w) {
  if (duration_s > 0) return energy_j / duration_s;
  double sum = 0;
  for (const double s : samples_w) sum += s;
  return sum / static_cast<double>(samples_w.size());
}

}  // namespace

PowerMon::PowerMon(PowerMonConfig cfg) : cfg_(cfg) {
  EROOF_REQUIRE(cfg_.sample_hz > 0);
  EROOF_REQUIRE(cfg_.adc_bits >= 4 && cfg_.adc_bits <= 24);
  EROOF_REQUIRE(cfg_.full_scale_w > 0);
}

double PowerMon::quantize(double watts) const {
  const double levels = static_cast<double>(1 << cfg_.adc_bits) - 1;
  const double clamped = std::clamp(watts, 0.0, cfg_.full_scale_w);
  return std::round(clamped / cfg_.full_scale_w * levels) / levels *
         cfg_.full_scale_w;
}

PowerTrace PowerMon::measure(double duration_s,
                             const std::function<double(double)>& power_w,
                             util::Rng& rng) const {
  EROOF_REQUIRE(duration_s >= 0);
  const double dt = 1.0 / cfg_.sample_hz;
  // Always bracket the run with endpoint samples; short kernels (shorter
  // than one sample period, or instantaneous probes at duration 0) degrade
  // to a 2-point trapezoid, exactly as a physical meter limited by its
  // sampling rate would.
  const std::size_t nsamples =
      std::max<std::size_t>(2, static_cast<std::size_t>(duration_s / dt) + 1);
  const double step = duration_s / static_cast<double>(nsamples - 1);

  // When a trace session is installed, the sample stream is mirrored into
  // it as a "power_w" counter track anchored at the wall-clock moment this
  // measurement started, with samples spread over the *simulated* duration
  // -- so a single trace file overlays the power curve on the phase spans.
  trace::TraceSession* ts = trace::session();
  const std::int64_t base_us = ts ? ts->now_us() : 0;

  PowerTrace trace;
  trace.duration_s = duration_s;
  trace.samples_w.reserve(nsamples);
  for (std::size_t i = 0; i < nsamples; ++i) {
    const double t = static_cast<double>(i) * step;
    const double noisy = power_w(t) + rng.normal(0.0, cfg_.noise_w);
    trace.samples_w.push_back(quantize(noisy));
    if (ts)
      ts->emit_counter("power_w",
                       base_us + static_cast<std::int64_t>(t * 1e6),
                       trace.samples_w.back());
  }

  double energy = 0;
  for (std::size_t i = 1; i < nsamples; ++i)
    energy += 0.5 * (trace.samples_w[i - 1] + trace.samples_w[i]) * step;
  trace.energy_j = energy;
  trace.avg_power_w = average_power(energy, duration_s, trace.samples_w);
  if (ts) {
    ts->add_counter_total("powermon.samples",
                          static_cast<double>(nsamples));
    ts->add_counter_total("powermon.energy_j", energy);
  }
  return trace;
}

PowerTrace PowerMon::measure_constant(double duration_s, double power_w,
                                      util::Rng& rng) const {
  EROOF_REQUIRE(duration_s >= 0);
  const double dt = 1.0 / cfg_.sample_hz;
  const std::size_t nsamples =
      std::max<std::size_t>(2, static_cast<std::size_t>(duration_s / dt) + 1);
  const double step = duration_s / static_cast<double>(nsamples - 1);

  PowerTrace trace;
  trace.duration_s = duration_s;
  // One trace buffer per measurement, sized before the batched sample
  // loop below; the loop itself never allocates.
  trace.samples_w.resize(nsamples);  // eroof-lint: allow(hot-alloc)
  // eroof: hot-begin (batched sample path: quantize + trapezoid, no
  // per-sample std::function or allocation -- this runs once per campaign
  // cell inside the parallel region)
  for (std::size_t i = 0; i < nsamples; ++i)
    trace.samples_w[i] = quantize(power_w + rng.normal(0.0, cfg_.noise_w));

  double energy = 0;
  for (std::size_t i = 1; i < nsamples; ++i)
    energy += 0.5 * (trace.samples_w[i - 1] + trace.samples_w[i]) * step;
  trace.energy_j = energy;
  trace.avg_power_w = average_power(energy, duration_s, trace.samples_w);
  // eroof: hot-end
  return trace;
}

void PowerMon::mirror_to_session(const PowerTrace& trace) {
  trace::TraceSession* ts = trace::session();
  if (!ts) return;
  const std::size_t nsamples = trace.samples_w.size();
  const double step =
      nsamples > 1 ? trace.duration_s / static_cast<double>(nsamples - 1) : 0.0;
  const std::int64_t base_us = ts->now_us();
  for (std::size_t i = 0; i < nsamples; ++i) {
    const double t = static_cast<double>(i) * step;
    ts->emit_counter("power_w", base_us + static_cast<std::int64_t>(t * 1e6),
                     trace.samples_w[i]);
  }
  ts->add_counter_total("powermon.samples", static_cast<double>(nsamples));
  ts->add_counter_total("powermon.energy_j", trace.energy_j);
}

}  // namespace eroof::hw
