#include "hw/soc.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <utility>

#include "util/require.hpp"

namespace eroof::hw {
namespace {

constexpr double kPicojoule = 1e-12;

bool is_core_domain(OpClass op) { return op != OpClass::kDramAccess; }

}  // namespace

double ThermalRamp::scale_at(std::uint64_t step) const {
  double f = 0.0;
  if (step > ramp_start) {
    const std::uint64_t into = step - ramp_start;
    f = ramp_steps == 0
            ? 1.0
            : std::min(1.0, static_cast<double>(into) /
                                static_cast<double>(ramp_steps));
  }
  double s = start_scale + f * (end_scale - start_scale);
  if (wobble_sigma > 0) {
    // Identity-keyed: the wobble at a step depends only on (seed, step),
    // never on how many other steps were evaluated or in what order.
    util::Rng rng = util::RngStream(seed).fork("thermal").fork(step).rng();
    s *= 1.0 + wobble_sigma * rng.normal();
  }
  // Leakage never vanishes entirely, however cold the trajectory claims.
  return std::max(s, 0.05);
}

Soc::Soc(GroundTruthEnergy truth, MachineRates rates)
    : truth_(truth), rates_(rates) {}

Soc Soc::with_leakage_scale(double scale) const {
  EROOF_REQUIRE(scale > 0);
  Soc s = *this;
  s.truth_.leak_scale = scale;
  return s;
}

Soc Soc::tegra_k1() {
  GroundTruthEnergy truth;
  // Calibrated so the *fitted* per-op costs land on the paper's Table I:
  // its published costs are exactly k * V^2 (e.g. SP: 29.0 pJ at 1.030 V and
  // 16.2 pJ at 0.770 V share k = 27.3 pJ/V^2). L1 has no Table I column; the
  // silicon pays slightly more than shared memory for the tag path.
  truth.k_dyn_pj = {
      27.3,   // SP FMA
      131.1,  // DP FMA
      56.6,   // integer
      33.4,   // shared memory word
      40.0,   // L1 word (unpublished; between SM and L2)
      85.0,   // L2 word
      369.6,  // DRAM word
  };
  truth.issue_overhead_pj = 2.0;
  truth.freq_sensitivity = 0.06;
  // Constant power decomposition solved from Table I's pi_0 column:
  // rows differing only in core voltage give c1_proc ~ 2.7 W/V; rows
  // differing only in memory voltage give c1_mem ~ 3.8 W/V.
  truth.c1_proc_w_per_v = 2.7;
  truth.c1_mem_w_per_v = 3.8;
  truth.p_misc_w = 0.15;
  truth.leak_curvature = 0.06;
  truth.setting_sigma = 0.012;
  truth.activity_sigma = 0.16;
  truth.leak_power_coupling = 0.008;
  truth.thermal_jitter = 0.01;
  truth.timing_jitter = 0.003;
  return Soc(truth, MachineRates{});
}

double Soc::true_op_energy_j(OpClass op, const DvfsSetting& s) const {
  const bool core = is_core_domain(op);
  const double v = core ? s.core.volt_v() : s.mem.volt_v();
  const double f = core ? s.core.freq_mhz / core_ladder().back().freq_mhz
                        : s.mem.freq_mhz / mem_ladder().back().freq_mhz;
  const double k = truth_.k_dyn_pj[static_cast<std::size_t>(op)];
  return k * v * v * (1.0 + truth_.freq_sensitivity * f) * kPicojoule;
}

double Soc::true_constant_power_w(const DvfsSetting& s) const {
  const double vp = s.core.volt_v();
  const double vm = s.mem.volt_v();
  const auto bend = [this](double v) {
    return 1.0 + truth_.leak_curvature * (v - 0.9);
  };
  // leak_scale (the slow thermal state) multiplies the voltage-dependent
  // leakage only; at the calibration temperature (scale 1) this reproduces
  // the original expression bit for bit.
  double p = truth_.leak_scale * (truth_.c1_proc_w_per_v * vp * bend(vp) +
                                  truth_.c1_mem_w_per_v * vm * bend(vm)) +
             truth_.p_misc_w;
  if (truth_.setting_sigma > 0) {
    // Per-measurement label hashing: one small string per simulated cell,
    // outside the batched per-sample loop.
    util::Rng point_rng(std::hash<std::string>{}("pi0@" + s.label()));  // eroof-lint: allow(hot-alloc)
    p *= 1.0 + truth_.setting_sigma * point_rng.normal();
  }
  return p;
}

double Soc::execution_time(const Workload& w, const DvfsSetting& s) const {
  EROOF_REQUIRE(w.compute_utilization > 0 && w.compute_utilization <= 1.0);
  EROOF_REQUIRE(w.memory_utilization > 0 && w.memory_utilization <= 1.0);
  const double fc = s.core.freq_hz();
  const double fm = s.mem.freq_hz();
  const OpCounts& n = w.ops;

  // Three core-side pipes that overlap with each other: floating point
  // (SP and DP share the FP units), integer ALU, and the on-chip load/store
  // path (SM, L1, L2 share issue).
  const double fp_time = (n[OpClass::kSpFlop] / rates_.sp_per_cycle +
                          n[OpClass::kDpFlop] / rates_.dp_per_cycle) /
                         fc;
  const double int_time = n[OpClass::kIntOp] / rates_.int_per_cycle / fc;
  const double ldst_time = (n[OpClass::kSmAccess] / rates_.sm_words_per_cycle +
                            n[OpClass::kL1Access] / rates_.l1_words_per_cycle +
                            n[OpClass::kL2Access] / rates_.l2_words_per_cycle) /
                           fc;
  const double compute_time =
      std::max({fp_time, int_time, ldst_time}) / w.compute_utilization;

  const double dram_time = n[OpClass::kDramAccess] /
                           (rates_.dram_words_per_cycle * fm) /
                           w.memory_utilization;

  return std::max(compute_time, dram_time) + rates_.kernel_overhead_s;
}

double Soc::dynamic_power_w(const Workload& w, const DvfsSetting& s,
                            double time_s) const {
  double e = 0;
  for (std::size_t i = 0; i < kNumOpClasses; ++i) {
    const auto op = static_cast<OpClass>(i);
    e += w.ops.n[i] * true_op_energy_j(op, s);
  }
  // Front-end issue energy for every compute instruction (unmodeled term).
  const double vp = s.core.volt_v();
  e += w.ops.compute_ops() * truth_.issue_overhead_pj * vp * vp * kPicojoule;
  // Per-workload switching activity: deterministic in the workload name, so
  // the same kernel draws the same factor at every setting; plus a smaller
  // per-(workload, setting) component (DVFS-dependent codegen/refresh-rate
  // effects) that no 9-parameter model can absorb.
  if (truth_.activity_sigma > 0) {
    // Per-measurement label hashing: two small strings per simulated cell,
    // outside the batched per-sample loop.
    util::Rng name_rng(std::hash<std::string>{}(w.name));  // eroof-lint: allow(hot-alloc)
    util::Rng pair_rng(std::hash<std::string>{}(w.name + "@" + s.label()));  // eroof-lint: allow(hot-alloc)
    e *= 1.0 + truth_.activity_sigma * name_rng.normal() +
         0.1 * truth_.activity_sigma * pair_rng.normal();
  }
  return e / time_s;
}

double Soc::true_energy_j(const Workload& w, const DvfsSetting& s,
                          double time_s) const {
  return dynamic_power_w(w, s, time_s) * time_s +
         true_constant_power_w(s) * time_s;
}

Measurement Soc::run(const Workload& w, const DvfsSetting& s,
                     const PowerMon& monitor, util::Rng& rng) const {
  PowerTrace trace;
  const Measurement m = run(w, s, monitor, util::RngStream(rng()), &trace);
  PowerMon::mirror_to_session(trace);
  return m;
}

SequenceMeasurement Soc::run_sequence(std::span<const Workload> phases,
                                      std::span<const DvfsSetting> settings,
                                      const DvfsTransitionModel& transitions,
                                      const PowerMon& monitor,
                                      const util::RngStream& stream,
                                      std::vector<PowerTrace>* traces_out)
    const {
  EROOF_REQUIRE(phases.size() == settings.size());
  SequenceMeasurement out;
  out.phases.reserve(phases.size());
  if (traces_out) {
    traces_out->clear();
    traces_out->reserve(phases.size());
  }
  for (std::size_t i = 0; i < phases.size(); ++i) {
    PowerTrace trace;
    Measurement m = run(phases[i], settings[i], monitor, stream.fork(i),
                        traces_out ? &trace : nullptr);
    if (traces_out) traces_out->push_back(std::move(trace));
    if (i > 0) {
      const int nd = transitions.changed_domains(settings[i - 1], settings[i]);
      if (nd > 0) {
        out.switches += nd;
        out.transition_time_s += transitions.latency_s;
        out.transition_energy_j +=
            transitions.energy_j * nd +
            transitions.latency_s * true_constant_power_w(settings[i]);
      }
    }
    out.time_s += m.time_s;
    out.energy_j += m.energy_j;
    out.phases.push_back(std::move(m));
  }
  out.time_s += out.transition_time_s;
  out.energy_j += out.transition_energy_j;
  return out;
}

Measurement Soc::run(const Workload& w, const DvfsSetting& s,
                     const PowerMon& monitor, const util::RngStream& stream,
                     PowerTrace* trace_out) const {
  util::Rng rng = stream.rng();
  const double time_s = execution_time(w, s) *
                        std::max(0.5, 1.0 + truth_.timing_jitter * rng.normal());
  const double p_dyn = dynamic_power_w(w, s, time_s);
  // Leakage wanders run to run with the die temperature, and the steady-state
  // temperature itself tracks dissipated power; the model treats constant
  // power as constant, so both are irreducible model error.
  const double p_const =
      true_constant_power_w(s) *
      (1.0 + truth_.leak_power_coupling * (p_dyn - 3.0) +
       truth_.thermal_jitter * rng.normal());

  PowerTrace trace = monitor.measure_constant(time_s, p_dyn + p_const, rng);

  Measurement m;
  m.workload = w.name;
  m.setting = s;
  m.ops = w.ops;
  m.time_s = time_s;
  m.energy_j = trace.energy_j;
  m.avg_power_w = trace.avg_power_w;
  if (trace_out) *trace_out = std::move(trace);
  return m;
}

}  // namespace eroof::hw
