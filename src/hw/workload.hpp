// Operation-class vocabulary shared by the whole toolkit.
//
// A workload, for the purposes of the energy model (paper eq. 9 and its
// per-class refinement in Section II-C), is a vector of operation counts --
// how many SP/DP flops, integer instructions, and words moved from each level
// of the memory hierarchy -- plus utilization factors describing how close
// the code comes to the machine's peak issue/bandwidth rates (the paper's
// Section IV-C attributes the FMM's constant-power dominance to
// underutilization: < 1/4 of peak IPC).
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>

namespace eroof::hw {

/// Operation classes the model prices. Memory classes count 4-byte words
/// ("mops"), matching the granularity of the paper's Table I costs.
enum class OpClass : std::size_t {
  kSpFlop = 0,   ///< single-precision FMA-class instruction
  kDpFlop = 1,   ///< double-precision FMA-class instruction
  kIntOp = 2,    ///< integer ALU instruction (loop/address arithmetic)
  kSmAccess = 3, ///< shared-memory (software-managed scratchpad) word access
  kL1Access = 4, ///< word served by the L1 cache
  kL2Access = 5, ///< word served by the L2 cache
  kDramAccess = 6, ///< word served by DRAM
  kCount = 7
};

inline constexpr std::size_t kNumOpClasses =
    static_cast<std::size_t>(OpClass::kCount);

inline constexpr std::array<std::string_view, kNumOpClasses> kOpClassNames = {
    "SP", "DP", "Integer", "SM", "L1", "L2", "DRAM"};

/// Per-class operation counts. Stored as doubles: counts derived from
/// counter *metrics* can be fractional, and FMM runs overflow 32-bit ints.
struct OpCounts {
  std::array<double, kNumOpClasses> n{};

  double& operator[](OpClass c) { return n[static_cast<std::size_t>(c)]; }
  double operator[](OpClass c) const { return n[static_cast<std::size_t>(c)]; }

  OpCounts& operator+=(const OpCounts& o) {
    for (std::size_t i = 0; i < kNumOpClasses; ++i) n[i] += o.n[i];
    return *this;
  }
  friend OpCounts operator+(OpCounts a, const OpCounts& b) { return a += b; }

  /// Total computation instructions (SP + DP + integer).
  double compute_ops() const {
    return n[0] + n[1] + n[2];
  }
  /// Total memory words touched across all levels.
  double memory_ops() const {
    return n[3] + n[4] + n[5] + n[6];
  }
};

/// A schedulable unit of work: counts + how efficiently they issue.
///
/// `compute_utilization` scales the machine's peak issue rates (1.0 = the
/// tight single-resource microbenchmarks; the FMM phases sit well below,
/// per the paper's IPC analysis). `memory_utilization` likewise scales
/// achievable DRAM bandwidth.
struct Workload {
  std::string name;
  OpCounts ops;
  double compute_utilization = 1.0;
  double memory_utilization = 1.0;
};

}  // namespace eroof::hw
