// Performance-counter registry and derivations.
//
// Mirrors the paper's Table III: the profile of the FMM kernel is assembled
// from raw counter *events* (single hardware counters) and *metrics*
// (characteristics derived from one or more events). Our instrumented FMM
// populates the same-named events; `derive_op_counts` applies the paper's
// derivations (e.g. "reads from the L2 cache can be calculated by
// subtracting the number of bytes read from the DRAM from the total number
// of requests to the L2") to produce the OpCounts the energy model prices.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "hw/workload.hpp"

namespace eroof::hw {

/// Counter kinds, as in Table III.
enum class CounterType { kEvent, kMetric };

/// One registry entry.
struct CounterDef {
  CounterType type;
  std::string_view name;
  std::string_view description;
};

/// The registry (Table III rows, plus the single-precision flop metrics the
/// paper's evaluation also differentiates per Section II-C).
const std::vector<CounterDef>& counter_table();

/// Bytes per DRAM/L2 sector and per L1 line on the modeled memory system.
inline constexpr double kSectorBytes = 32.0;
inline constexpr double kL1LineBytes = 128.0;
inline constexpr double kSharedTransactionBytes = 32.0;
inline constexpr double kWordBytes = 4.0;

/// A bag of named counter values collected during a run.
class CounterSet {
 public:
  /// Adds `v` to counter `name` (creating it at zero).
  void add(std::string_view name, double v);

  /// Value of `name`, or 0 if never touched.
  double get(std::string_view name) const;

  bool has(std::string_view name) const;

  CounterSet& operator+=(const CounterSet& o);

  const std::map<std::string, double, std::less<>>& values() const {
    return values_;
  }

 private:
  std::map<std::string, double, std::less<>> values_;
};

/// Applies the Table III derivations to produce per-class operation counts:
///   SP/DP flops   = sum of fma/add/mul metrics
///   integer       = inst_integer
///   SM words      = shared load+store transactions * 32 B / 4 B
///   DRAM words    = read+write sectors * 32 B / 4 B
///   L2 words      = total L2 sector queries * 8 - DRAM words  (>= 0)
///   L1 words      = L1 hit lines * 128 B / 4 B
OpCounts derive_op_counts(const CounterSet& counters);

}  // namespace eroof::hw
