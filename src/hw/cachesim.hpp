// Set-associative cache-hierarchy simulator.
//
// Substitutes for the memory-system performance counters of the paper's GPU:
// the instrumented FMM feeds its global-memory access stream (virtual
// addresses) through an L1 + L2 hierarchy; the words served at each level
// become the l1/l2/fb_* counter events of Table III. Sector-granular
// (32 B) like the modeled hardware, LRU replacement, write-allocate.
#pragma once

#include <cstdint>
#include <vector>

namespace eroof::hw {

/// Geometry of one cache level.
struct CacheConfig {
  std::uint64_t size_bytes = 0;
  std::uint64_t line_bytes = 0;
  std::uint32_t associativity = 0;
};

/// One set-associative, LRU, line-granular cache level.
class Cache {
 public:
  explicit Cache(CacheConfig cfg);

  /// Looks up (and on miss, fills) the line containing `addr`.
  /// Returns true on hit.
  bool access(std::uint64_t addr);

  /// Invalidates all lines and zeroes statistics.
  void reset();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  const CacheConfig& config() const { return cfg_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // last-touch stamp
    bool valid = false;
  };

  CacheConfig cfg_;
  std::uint64_t num_sets_;
  std::uint64_t line_shift_;
  std::vector<Way> ways_;  // num_sets * associativity, set-major
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Words of traffic served by each level during simulation.
struct LevelTraffic {
  double l1_words = 0;
  double l2_words = 0;
  double dram_words = 0;

  LevelTraffic& operator+=(const LevelTraffic& o) {
    l1_words += o.l1_words;
    l2_words += o.l2_words;
    dram_words += o.dram_words;
    return *this;
  }
};

/// Two-level hierarchy (L1 -> L2 -> DRAM) over a flat virtual address space.
///
/// Defaults follow the Tegra K1 GPU: 16 KiB L1 with 128 B lines, 128 KiB L2
/// with 32 B sectors. Accesses are expanded to the 32 B sectors they touch;
/// a sector that hits in L1 counts as L1 words, else it is looked up
/// (sector-granular) in L2, counting as L2 or DRAM words.
class MemoryHierarchy {
 public:
  MemoryHierarchy();
  MemoryHierarchy(CacheConfig l1, CacheConfig l2);

  /// Simulates a read or write of `bytes` bytes at virtual address `addr`.
  void access(std::uint64_t addr, std::uint64_t bytes, bool write);

  /// Traffic tallied since construction / last reset.
  const LevelTraffic& traffic() const { return traffic_; }

  /// Sector-level counts (for emitting Table III events).
  std::uint64_t l1_hit_lines() const { return l1_hit_lines_; }
  std::uint64_t l2_read_sector_queries() const { return l2_queries_read_; }
  std::uint64_t l2_write_sector_queries() const { return l2_queries_write_; }
  std::uint64_t dram_read_sectors() const { return dram_read_sectors_; }
  std::uint64_t dram_write_sectors() const { return dram_write_sectors_; }

  void reset();

 private:
  Cache l1_;
  Cache l2_;
  LevelTraffic traffic_;
  std::uint64_t l1_hit_lines_ = 0;
  std::uint64_t l2_queries_read_ = 0;
  std::uint64_t l2_queries_write_ = 0;
  std::uint64_t dram_read_sectors_ = 0;
  std::uint64_t dram_write_sectors_ = 0;
};

}  // namespace eroof::hw
