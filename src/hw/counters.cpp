#include "hw/counters.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace eroof::hw {

const std::vector<CounterDef>& counter_table() {
  using enum CounterType;
  static const std::vector<CounterDef> table = {
      {kMetric, "flops_sp_fma",
       "# of single-precision floating point multiply-accumulate operations"},
      {kMetric, "flops_sp_add",
       "# of single-precision floating point add operations"},
      {kMetric, "flops_sp_mul",
       "# of single-precision floating point multiply operations"},
      {kMetric, "flops_dp_fma",
       "# of double-precision floating point multiply-accumulate operations"},
      {kMetric, "flops_dp_add",
       "# of double-precision floating point add operations"},
      {kMetric, "flops_dp_mul",
       "# of double-precision floating point multiply operations"},
      {kMetric, "inst_integer", "# of integer instructions"},
      {kEvent, "l1_global_load_hit", "# of cache lines that hit in L1 cache"},
      {kEvent, "l2_subp0_total_read_sector_queries",
       "Total read request for slice 0 of L2 cache"},
      {kEvent, "gld_request", "# of load instructions"},
      {kEvent, "l1_shared_load_transactions", "# of shared load transactions"},
      {kEvent, "fb_subp0_read_sectors",
       "# of DRAM read request to sub partition 0"},
      {kEvent, "fb_subp1_read_sectors",
       "# of DRAM read request to sub partition 1"},
      {kEvent, "fb_subp0_write_sectors",
       "# of DRAM write request to sub partition 0"},
      {kEvent, "fb_subp1_write_sectors",
       "# of DRAM write request to sub partition 1"},
      {kEvent, "l2_subp0_read_l1_hit_sectors",
       "# of read requests from L1 that hit in slice 0 of L2 cache"},
      {kEvent, "l2_subp1_read_l1_hit_sectors",
       "# of read requests from L1 that hit in slice 1 of L2 cache"},
      {kEvent, "l2_subp2_read_l1_hit_sectors",
       "# of read requests from L1 that hit in slice 2 of L2 cache"},
      {kEvent, "l2_subp3_read_l1_hit_sectors",
       "# of read requests from L1 that hit in slice 3 of L2 cache"},
      {kEvent, "gst_request", "# of store instructions"},
      {kEvent, "l2_subp0_total_write_sector_queries",
       "Total write request to slice 0 of L2 cache"},
      {kEvent, "l1_shared_store_transactions",
       "# of shared store transactions"},
  };
  return table;
}

void CounterSet::add(std::string_view name, double v) {
  auto it = values_.find(name);
  if (it == values_.end())
    values_.emplace(std::string(name), v);
  else
    it->second += v;
}

double CounterSet::get(std::string_view name) const {
  auto it = values_.find(name);
  return it == values_.end() ? 0.0 : it->second;
}

bool CounterSet::has(std::string_view name) const {
  return values_.contains(name);
}

CounterSet& CounterSet::operator+=(const CounterSet& o) {
  for (const auto& [k, v] : o.values_) add(k, v);
  return *this;
}

OpCounts derive_op_counts(const CounterSet& c) {
  OpCounts ops;
  ops[OpClass::kSpFlop] = c.get("flops_sp_fma") + c.get("flops_sp_add") +
                          c.get("flops_sp_mul");
  ops[OpClass::kDpFlop] = c.get("flops_dp_fma") + c.get("flops_dp_add") +
                          c.get("flops_dp_mul");
  ops[OpClass::kIntOp] = c.get("inst_integer");

  const double shared_tx = c.get("l1_shared_load_transactions") +
                           c.get("l1_shared_store_transactions");
  ops[OpClass::kSmAccess] = shared_tx * kSharedTransactionBytes / kWordBytes;

  const double dram_sectors =
      c.get("fb_subp0_read_sectors") + c.get("fb_subp1_read_sectors") +
      c.get("fb_subp0_write_sectors") + c.get("fb_subp1_write_sectors");
  ops[OpClass::kDramAccess] = dram_sectors * kSectorBytes / kWordBytes;

  const double l2_queries = c.get("l2_subp0_total_read_sector_queries") +
                            c.get("l2_subp0_total_write_sector_queries");
  const double l2_words = l2_queries * kSectorBytes / kWordBytes;
  // The paper's derivation: L2-served traffic is total L2 queries minus what
  // DRAM had to provide.
  ops[OpClass::kL2Access] =
      std::max(0.0, l2_words - ops[OpClass::kDramAccess]);

  ops[OpClass::kL1Access] =
      c.get("l1_global_load_hit") * kL1LineBytes / kWordBytes;
  return ops;
}

}  // namespace eroof::hw
