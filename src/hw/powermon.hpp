// Simulated PowerMon 2: an inline power meter sampling voltage/current
// between the supply and the board (Bedard et al. 2010). The real device
// samples at up to 1024 Hz through an ADC; energy is the numerical integral
// of the sampled power. We reproduce exactly that pipeline -- sampling,
// quantization, sensor noise, trapezoidal integration -- so "measured"
// energies differ from closed-form truth the way a physical campaign's would.
#pragma once

#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace eroof::hw {

/// PowerMon channel configuration.
struct PowerMonConfig {
  double sample_hz = 1024.0;   ///< sampling rate (device max is 1024 Hz)
  int adc_bits = 12;           ///< ADC resolution per sample
  double full_scale_w = 25.0;  ///< measurable power range [0, full_scale]
  double noise_w = 0.02;       ///< Gaussian sensor noise, 1 sigma, in watts
};

/// One completed measurement.
struct PowerTrace {
  double duration_s = 0;
  double energy_j = 0;              ///< trapezoidal integral of samples
  /// energy / duration; for a zero-duration probe (energy is exactly 0 by
  /// the trapezoid rule) it is the arithmetic mean of the samples instead,
  /// so the field is always finite.
  double avg_power_w = 0;
  std::vector<double> samples_w;    ///< the raw sampled power values
};

/// The measurement device. Stateless apart from configuration; each
/// measurement draws noise from the caller's RNG so campaigns replay
/// deterministically from one seed.
class PowerMon {
 public:
  explicit PowerMon(PowerMonConfig cfg = {});

  const PowerMonConfig& config() const { return cfg_; }

  /// Samples `power_w(t)` over [0, duration_s] at the configured rate,
  /// applying sensor noise and ADC quantization, and integrates.
  ///
  /// Runs shorter than one sample period -- down to and including
  /// duration_s == 0 -- still bracket the run with the two endpoint
  /// samples (a physical meter limited by its sampling rate does exactly
  /// this), so the trace never has an empty sample vector, its energy is
  /// the exact 2-point trapezoid 0.5 * (s0 + s1) * duration, and its
  /// average power stays finite. Negative durations are rejected.
  PowerTrace measure(double duration_s,
                     const std::function<double(double)>& power_w,
                     util::Rng& rng) const;

  /// Batched fast path for the (common) constant-power case: no per-sample
  /// std::function dispatch and no trace-session interaction, so it is safe
  /// to call from parallel regions. Same duration contract as measure():
  /// sub-sample-period and zero-duration runs get the 2-point trapezoid. Callers that want the sample stream in
  /// the trace mirror the returned PowerTrace later via mirror_to_session.
  PowerTrace measure_constant(double duration_s, double power_w,
                              util::Rng& rng) const;

  /// Replays a completed trace into the installed trace session (no-op when
  /// none is installed): the sample stream as a "power_w" counter track
  /// anchored at the session's current wall-clock, plus the
  /// powermon.samples / powermon.energy_j totals. Parallel campaigns buffer
  /// PowerTraces and call this serially in cell order, which keeps counter
  /// totals bitwise-identical to a sequential run.
  static void mirror_to_session(const PowerTrace& trace);

 private:
  double quantize(double watts) const;

  PowerMonConfig cfg_;
};

}  // namespace eroof::hw
