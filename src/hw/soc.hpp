// Ground-truth physics of the simulated Tegra-K1-class SoC.
//
// This is the *platform substitute* for the paper's Jetson TK1 (DESIGN.md
// section 1): it decides how long a workload takes and how much power it
// really draws at a given DVFS setting. Its constants are calibrated so the
// per-operation costs the model later *fits* land on the paper's Table I
// values, but the fitted model never reads them -- it only sees operation
// counts, execution times, and PowerMon-sampled energies. Deliberate
// nonidealities (per-instruction issue overhead, a weak frequency dependence
// of per-op energy, thermal jitter of leakage) keep the fit honest and put
// prediction errors in the paper's observed few-percent band.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hw/dvfs.hpp"
#include "hw/powermon.hpp"
#include "hw/workload.hpp"
#include "util/rng.hpp"

namespace eroof::hw {

/// Hidden energy coefficients (the "silicon").
struct GroundTruthEnergy {
  /// Dynamic energy per operation at supply voltage V (volts):
  /// eps_op = k_dyn_pj[op] * V^2 * (1 + freq_sensitivity * f/f_max),
  /// in picojoules. V is the core voltage for compute/on-chip classes and
  /// the memory voltage for DRAM accesses.
  std::array<double, kNumOpClasses> k_dyn_pj{};

  /// Unmodeled per-instruction front-end (fetch/decode/schedule) energy,
  /// pJ/V^2, charged to every compute instruction. The fitted model has no
  /// such term; NNLS absorbs its average into the per-class constants and
  /// the residual becomes genuine model error.
  double issue_overhead_pj = 0;

  /// Weak frequency dependence of per-op energy (clock-tree share that does
  /// not amortize perfectly); the model assumes exactly zero.
  double freq_sensitivity = 0;

  /// Leakage / constant power: c1_proc * Vproc + c1_mem * Vmem + p_misc (W).
  double c1_proc_w_per_v = 0;
  double c1_mem_w_per_v = 0;
  double p_misc_w = 0;

  /// Superlinear leakage curvature: each leakage term is additionally
  /// scaled by (1 + curvature * (V - 0.9 V)). The model's eq. 8 is linear
  /// in V, so voltage extrapolation (leave-one-setting-out CV) pays for it.
  double leak_curvature = 0;

  /// 1-sigma *per-operating-point* fractional deviation of constant power
  /// (board regulator efficiency is a function of the operating point, not
  /// of voltage alone). Deterministic per setting, so constant-power
  /// dominated runs carry irreducible model error too.
  double setting_sigma = 0;

  /// 1-sigma *per-workload* fractional variation of dynamic energy: real
  /// kernels differ in switching activity (operand bit patterns, bank
  /// conflicts), but the model prices every op of a class identically.
  /// Deterministic per workload name, so it is a systematic model error,
  /// not averaging-friendly noise.
  double activity_sigma = 0;

  /// Leakage grows with die temperature, which tracks dissipated power;
  /// the model treats constant power as constant. Fractional leakage
  /// increase per watt of dynamic power above ~3 W.
  double leak_power_coupling = 0;

  /// 1-sigma run-to-run fractional jitter of leakage (thermal state).
  double thermal_jitter = 0;

  /// Slow thermal state: multiplies both voltage-dependent leakage slopes
  /// (c1_proc, c1_mem) -- die temperature scales subthreshold leakage --
  /// but not p_misc (board glue is temperature-flat). 1.0 is the
  /// calibration temperature; a ThermalRamp sweeps this via
  /// Soc::with_leakage_scale. The fast per-run thermal_jitter rides on top.
  double leak_scale = 1.0;

  /// 1-sigma run-to-run fractional jitter of measured execution time
  /// (scheduling, DVFS transition latency). Settings whose true roofline
  /// times tie exactly therefore measure apart, as on real hardware.
  double timing_jitter = 0;
};

/// Peak machine rates (the "datasheet"). Compute rates are per core cycle,
/// DRAM rate per memory cycle; memory units are 4-byte words.
struct MachineRates {
  double sp_per_cycle = 192;    ///< 192 CUDA cores, 1 SP FMA each
  double dp_per_cycle = 8;      ///< 1/24 of SP throughput (Tegra K1)
  double int_per_cycle = 160;   ///< integer ALU issue width
  double sm_words_per_cycle = 192;  ///< shared-memory banks
  double l1_words_per_cycle = 64;
  double l2_words_per_cycle = 32;
  double dram_words_per_cycle = 4;  ///< 16 B / EMC cycle = 14.8 GB/s @ 924 MHz
  double kernel_overhead_s = 15e-6; ///< fixed launch/drain cost per workload
};

/// One measured run, as an analyst would record it: what the counters said,
/// how long it took, what PowerMon integrated.
struct Measurement {
  std::string workload;
  DvfsSetting setting;
  OpCounts ops;
  double time_s = 0;
  double energy_j = 0;    ///< PowerMon-integrated (noisy) energy
  double avg_power_w = 0;
};

/// A measured multi-phase run under a per-phase DVFS schedule: the per-phase
/// measurements plus the transition overheads the schedule paid.
struct SequenceMeasurement {
  std::vector<Measurement> phases;   ///< one Measurement per executed phase
  int switches = 0;                  ///< domain switches paid
  double transition_time_s = 0;      ///< summed relock stalls
  double transition_energy_j = 0;    ///< switch energy + stalls' pi_0 cost
  double time_s = 0;                 ///< phases + transitions
  double energy_j = 0;               ///< phases + transitions
};

/// Deterministic die-temperature trajectory for long-horizon runs, expressed
/// as the leakage scale to apply (via Soc::with_leakage_scale) at each step:
/// flat at `start_scale` through step `ramp_start`, linear to `end_scale`
/// over the next `ramp_steps` steps, flat thereafter -- plus an optional
/// per-step wobble drawn from an identity-keyed util::RngStream fork, so
/// scale_at(step) is a pure function of (config, step) regardless of
/// evaluation order or thread count. This is the *slow* thermal state the
/// per-run `thermal_jitter` rides on; keeping it outside Soc::run keeps
/// single-run measurements bitwise-stable while the closed-loop refresh
/// (core/refresh, DESIGN.md section 14) sweeps it across a simulation.
struct ThermalRamp {
  double start_scale = 1.0;
  double end_scale = 1.0;
  std::uint64_t ramp_start = 0;  ///< last step still at start_scale
  std::uint64_t ramp_steps = 1;  ///< steps the linear ramp spans (>= 1)
  double wobble_sigma = 0.0;     ///< 1-sigma fractional per-step wobble
  std::uint64_t seed = 0;        ///< root of the wobble stream

  /// Leakage scale at `step`; deterministic and order-free.
  double scale_at(std::uint64_t step) const;
};

/// The simulated SoC.
class Soc {
 public:
  Soc(GroundTruthEnergy truth, MachineRates rates);

  /// The calibrated Tegra-K1-like instance used throughout the experiments.
  static Soc tegra_k1();

  const MachineRates& rates() const { return rates_; }

  /// Copy of this SoC with GroundTruthEnergy::leak_scale set to `scale` --
  /// the deterministic "die temperature" axis a ThermalRamp sweeps.
  /// scale == 1 reproduces this SoC's measurements bit for bit.
  Soc with_leakage_scale(double scale) const;
  double leakage_scale() const { return truth_.leak_scale; }

  /// Ground-truth per-op dynamic energy in joules at a setting. Exposed for
  /// white-box tests only; the model-fitting pipeline must not call this.
  double true_op_energy_j(OpClass op, const DvfsSetting& s) const;

  /// Ground-truth constant power (W) at a setting, without thermal jitter.
  double true_constant_power_w(const DvfsSetting& s) const;

  /// Roofline execution time of a workload at a setting (seconds):
  /// max(compute pipes, DRAM stream) under the workload's utilizations,
  /// plus fixed kernel overhead.
  double execution_time(const Workload& w, const DvfsSetting& s) const;

  /// Noiseless total energy over `time_s` (dynamic + constant). Test hook.
  double true_energy_j(const Workload& w, const DvfsSetting& s,
                       double time_s) const;

  /// Executes the workload and measures it with `monitor`: returns the
  /// counter-visible op counts, the execution time, and the PowerMon
  /// energy (sampled, quantized, noisy; leakage sees thermal jitter).
  ///
  /// Legacy entry point: advances the shared sequential `rng` by one draw to
  /// derive a per-run stream, then forwards to the stream overload and
  /// mirrors the sample trace into any installed trace session.
  Measurement run(const Workload& w, const DvfsSetting& s,
                  const PowerMon& monitor, util::Rng& rng) const;

  /// Stream-based entry point: all measurement noise is drawn from a private
  /// generator seeded by `stream`, so the result depends only on the stream
  /// identity -- never on what other runs executed before it. Safe to call
  /// concurrently. Does not touch the trace session; pass `trace_out` to
  /// capture the PowerMon samples and mirror them later
  /// (PowerMon::mirror_to_session) in a deterministic order.
  Measurement run(const Workload& w, const DvfsSetting& s,
                  const PowerMon& monitor, const util::RngStream& stream,
                  PowerTrace* trace_out = nullptr) const;

  /// One measured execution of a *scheduled* run: phase i executes at
  /// settings[i], and every transition between consecutive differing
  /// settings pays the transition model's stall (priced at the entered
  /// setting's ground-truth constant power) plus its fixed switch energy.
  /// Phase i draws its measurement noise from
  /// stream.fork(i), so the result is bitwise-identical regardless of what
  /// else ran before -- the ground-truth validation path for the per-phase
  /// DVFS scheduler (core/schedule).
  ///
  /// When `traces_out` is non-null it is overwritten with one PowerTrace
  /// per phase (the in-service sample streams the closed-loop refresh
  /// mirrors into the trace session, serially, after the run).
  SequenceMeasurement run_sequence(std::span<const Workload> phases,
                                   std::span<const DvfsSetting> settings,
                                   const DvfsTransitionModel& transitions,
                                   const PowerMon& monitor,
                                   const util::RngStream& stream,
                                   std::vector<PowerTrace>* traces_out =
                                       nullptr) const;

 private:
  double dynamic_power_w(const Workload& w, const DvfsSetting& s,
                         double time_s) const;

  GroundTruthEnergy truth_;
  MachineRates rates_;
};

}  // namespace eroof::hw
