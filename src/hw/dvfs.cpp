#include "hw/dvfs.hpp"

#include <cmath>
#include <sstream>

#include "util/require.hpp"

namespace eroof::hw {

std::string DvfsSetting::label() const {
  std::ostringstream os;
  os << core.freq_mhz << '/' << mem.freq_mhz;
  return os.str();
}

const std::vector<OperatingPoint>& core_ladder() {
  // 15 gbus operating points. Voltages at the paper's published points
  // (72/760, 180/760, 396/770, 540/840, 648/890, 756/950, 852/1030 from
  // Table I; 612 MHz appears in Table IV) -- the rest interpolated.
  static const std::vector<OperatingPoint> ladder = {
      {72, 760},  {108, 760}, {180, 760}, {252, 760}, {324, 765},
      {396, 770}, {468, 800}, {540, 840}, {612, 870}, {648, 890},
      {684, 910}, {708, 920}, {756, 950}, {804, 990}, {852, 1030},
  };
  return ladder;
}

const std::vector<OperatingPoint>& mem_ladder() {
  // 7 EMC operating points; 68/800, 204/800, 528/880, 924/1010 appear in
  // Table I, 396 and 792 in Table IV.
  static const std::vector<OperatingPoint> ladder = {
      {68, 800},  {204, 800}, {396, 850}, {528, 880},
      {600, 900}, {792, 950}, {924, 1010},
  };
  return ladder;
}

OperatingPoint point_at(const std::vector<OperatingPoint>& ladder,
                        double freq_mhz) {
  for (const auto& p : ladder)
    if (p.freq_mhz == freq_mhz) return p;
  EROOF_REQUIRE_MSG(false, "frequency " + std::to_string(freq_mhz) +
                               " MHz is not an operating point");
  return {};
}

DvfsSetting setting(double core_mhz, double mem_mhz) {
  return {point_at(core_ladder(), core_mhz), point_at(mem_ladder(), mem_mhz)};
}

std::vector<DvfsSetting> full_grid() {
  std::vector<DvfsSetting> grid;
  grid.reserve(core_ladder().size() * mem_ladder().size());
  for (const auto& c : core_ladder())
    for (const auto& m : mem_ladder()) grid.push_back({c, m});
  return grid;
}

const std::vector<LabeledSetting>& table1_settings() {
  using enum SettingRole;
  static const std::vector<LabeledSetting> rows = {
      {kTrain, setting(852, 924)},    {kTrain, setting(396, 924)},
      {kTrain, setting(852, 528)},    {kTrain, setting(648, 528)},
      {kTrain, setting(396, 528)},    {kTrain, setting(852, 204)},
      {kTrain, setting(648, 204)},    {kTrain, setting(396, 204)},
      {kValidate, setting(756, 924)}, {kValidate, setting(180, 528)},
      {kValidate, setting(540, 528)}, {kValidate, setting(540, 204)},
      {kValidate, setting(756, 204)}, {kValidate, setting(72, 68)},
      {kValidate, setting(756, 68)},  {kValidate, setting(180, 924)},
  };
  return rows;
}

const std::vector<DvfsSetting>& table4_settings() {
  static const std::vector<DvfsSetting> rows = {
      setting(852, 924), setting(756, 924), setting(180, 924),
      setting(852, 792), setting(612, 528), setting(540, 528),
      setting(612, 396), setting(852, 204),
  };
  return rows;
}

int DvfsTransitionModel::changed_domains(const DvfsSetting& from,
                                         const DvfsSetting& to) const {
  return static_cast<int>(from.core.freq_mhz != to.core.freq_mhz) +
         static_cast<int>(from.mem.freq_mhz != to.mem.freq_mhz);
}

double DvfsTransitionModel::stall_s(const DvfsSetting& from,
                                    const DvfsSetting& to) const {
  return changed_domains(from, to) > 0 ? latency_s : 0.0;
}

double DvfsTransitionModel::switch_energy_j(const DvfsSetting& from,
                                            const DvfsSetting& to) const {
  return energy_j * changed_domains(from, to);
}

}  // namespace eroof::hw
