#include "hw/cachesim.hpp"

#include <bit>

#include "util/require.hpp"

namespace eroof::hw {
namespace {

constexpr std::uint64_t kSectorBytes = 32;
constexpr double kWordsPerSector = kSectorBytes / 4.0;

}  // namespace

Cache::Cache(CacheConfig cfg) : cfg_(cfg) {
  EROOF_REQUIRE(cfg_.line_bytes > 0 && std::has_single_bit(cfg_.line_bytes));
  EROOF_REQUIRE(cfg_.associativity > 0);
  EROOF_REQUIRE(cfg_.size_bytes % (cfg_.line_bytes * cfg_.associativity) == 0);
  num_sets_ = cfg_.size_bytes / (cfg_.line_bytes * cfg_.associativity);
  EROOF_REQUIRE(std::has_single_bit(num_sets_));
  line_shift_ = static_cast<std::uint64_t>(std::countr_zero(cfg_.line_bytes));
  ways_.assign(num_sets_ * cfg_.associativity, Way{});
}

bool Cache::access(std::uint64_t addr) {
  const std::uint64_t line = addr >> line_shift_;
  const std::uint64_t set = line & (num_sets_ - 1);
  const std::uint64_t tag = line >> std::countr_zero(num_sets_);
  Way* base = &ways_[set * cfg_.associativity];
  ++clock_;

  Way* victim = base;
  for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = clock_;
      ++hits_;
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = clock_;
  ++misses_;
  return false;
}

void Cache::reset() {
  for (auto& w : ways_) w = Way{};
  clock_ = hits_ = misses_ = 0;
}

MemoryHierarchy::MemoryHierarchy()
    : MemoryHierarchy(CacheConfig{16 * 1024, 128, 4},
                      CacheConfig{128 * 1024, 32, 8}) {}

MemoryHierarchy::MemoryHierarchy(CacheConfig l1, CacheConfig l2)
    : l1_(l1), l2_(l2) {}

void MemoryHierarchy::access(std::uint64_t addr, std::uint64_t bytes,
                             bool write) {
  EROOF_REQUIRE(bytes > 0);
  // One lookup per touched L1 line: a coalesced warp access is a single
  // 128 B transaction, so sectors of one streaming access must not count as
  // L1 "hits" against each other. On an L1 miss, the touched sectors are
  // requested from L2 individually (the L2 is sector-granular).
  const std::uint64_t line_bytes = l1_.config().line_bytes;
  const std::uint64_t first_line = addr / line_bytes;
  const std::uint64_t last_line = (addr + bytes - 1) / line_bytes;
  for (std::uint64_t line = first_line; line <= last_line; ++line) {
    const std::uint64_t line_addr = line * line_bytes;
    const std::uint64_t lo = std::max(addr, line_addr);
    const std::uint64_t hi = std::min(addr + bytes, line_addr + line_bytes);
    const std::uint64_t first_sector = lo / kSectorBytes;
    const std::uint64_t last_sector = (hi - 1) / kSectorBytes;
    const std::uint64_t sectors = last_sector - first_sector + 1;

    if (l1_.access(line_addr)) {
      traffic_.l1_words += kWordsPerSector * static_cast<double>(sectors);
      ++l1_hit_lines_;
      continue;
    }
    for (std::uint64_t sector = first_sector; sector <= last_sector;
         ++sector) {
      const std::uint64_t saddr = sector * kSectorBytes;
      if (write)
        ++l2_queries_write_;
      else
        ++l2_queries_read_;
      if (l2_.access(saddr)) {
        traffic_.l2_words += kWordsPerSector;
      } else {
        traffic_.dram_words += kWordsPerSector;
        if (write)
          ++dram_write_sectors_;
        else
          ++dram_read_sectors_;
      }
    }
  }
}

void MemoryHierarchy::reset() {
  l1_.reset();
  l2_.reset();
  traffic_ = {};
  l1_hit_lines_ = 0;
  l2_queries_read_ = l2_queries_write_ = 0;
  dram_read_sectors_ = dram_write_sectors_ = 0;
}

}  // namespace eroof::hw
