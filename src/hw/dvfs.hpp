// DVFS operating-point ladders for the simulated Tegra-K1-class SoC.
//
// The paper's platform exposes 15 processor (GPU core) frequencies and 7
// memory (EMC) frequencies; selecting a frequency selects a predetermined
// voltage (paper footnote 1). The frequencies below follow the Jetson TK1's
// published gbus/EMC ladders, and the voltages at the operating points the
// paper lists (Tables I and IV) match it exactly; intermediate points are
// interpolated monotonically.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace eroof::hw {

/// One frequency/voltage operating point of a clock domain.
struct OperatingPoint {
  double freq_mhz = 0;
  double volt_mv = 0;

  double freq_hz() const { return freq_mhz * 1e6; }
  double volt_v() const { return volt_mv * 1e-3; }
};

/// A complete DVFS setting: one point per independently scalable domain.
struct DvfsSetting {
  OperatingPoint core;
  OperatingPoint mem;

  /// "852/924" style label used in tables.
  std::string label() const;
};

/// The 15 processor operating points, ascending frequency.
const std::vector<OperatingPoint>& core_ladder();

/// The 7 memory operating points, ascending frequency.
const std::vector<OperatingPoint>& mem_ladder();

/// Looks up an operating point by frequency (exact match, MHz) in a ladder.
/// Throws ContractError if the frequency is not an operating point.
OperatingPoint point_at(const std::vector<OperatingPoint>& ladder,
                        double freq_mhz);

/// Builds a setting from (core MHz, mem MHz); both must be ladder points.
DvfsSetting setting(double core_mhz, double mem_mhz);

/// All 15 x 7 = 105 settings (the paper's full permutation space).
std::vector<DvfsSetting> full_grid();

/// Whether a sample is used for model training ("T") or validation ("V") in
/// the paper's 2-fold holdout (Table I).
enum class SettingRole { kTrain, kValidate };

struct LabeledSetting {
  SettingRole role;
  DvfsSetting s;
};

/// The 16 settings of Table I: 8 training + 8 validation.
const std::vector<LabeledSetting>& table1_settings();

/// The 8 system settings S1..S8 of Table IV used for FMM validation.
const std::vector<DvfsSetting>& table4_settings();

/// Cost model of a DVFS transition. Changing a domain's operating point
/// stalls execution while the PLL relocks and the regulator ramps
/// (`latency_s`; the Tegra K1's gbus/EMC reclock is of order 100 us) and
/// dissipates a fixed switch energy per changed domain (`energy_j`,
/// regulator/refresh-retraining overhead). Core and memory relock in
/// parallel, so a transition that changes both domains pays one stall but
/// two switch energies. The stall itself additionally costs constant power
/// at the entered setting; consumers (Soc::run_sequence, the per-phase
/// scheduler) price that part, since only they know whose pi_0 to use.
struct DvfsTransitionModel {
  double latency_s = 0;  ///< stall per transition that changes >= 1 domain
  double energy_j = 0;   ///< fixed switch energy per changed domain

  /// How many domains (0..2) change operating point between two settings.
  int changed_domains(const DvfsSetting& from, const DvfsSetting& to) const;

  /// Stall time of the transition: `latency_s` if any domain changes.
  double stall_s(const DvfsSetting& from, const DvfsSetting& to) const;

  /// Fixed switch energy of the transition (excludes the stall's
  /// constant-power cost): `energy_j` per changed domain.
  double switch_energy_j(const DvfsSetting& from, const DvfsSetting& to) const;
};

}  // namespace eroof::hw
