// Phase-level tracing & metrics (the observability layer).
//
// The paper's argument is built on attributing time and energy to individual
// FMM phases (UP/U/V/W/X/DOWN, Figs. 4-6). This module records that
// attribution in a machine-readable way: a process-wide TraceSession collects
//
//   * spans      -- named, nested wall-time intervals (ScopedSpan RAII),
//                   each carrying key=value annotations such as a phase's
//                   FmmStats tallies,
//   * counter samples -- timestamped (t, value) points, e.g. the PowerMon
//                   power stream, so one trace file aligns power with phases,
//   * counter totals  -- a named-counter registry of deterministic running
//                   sums (work tallies, sample counts) that regression tests
//                   compare bit-for-bit across runs and thread counts.
//
// Exporters (trace/export.hpp) serialize a session to chrome://tracing JSON
// and CSV. When no session is installed the instrumentation costs one
// relaxed atomic load per call site and touches no clock -- hot paths stay
// hot with tracing compiled in.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace eroof::trace {

using Clock = std::chrono::steady_clock;

/// One key=value annotation on a span (chrome tracing "args").
struct Arg {
  std::string key;
  double value = 0;
};

/// A completed span (chrome tracing "ph":"X").
struct SpanEvent {
  std::string name;
  std::string category;
  std::uint32_t tid = 0;   ///< session-assigned thread index
  std::int64_t start_us = 0;  ///< microseconds since session epoch
  std::int64_t dur_us = 0;
  int depth = 0;           ///< nesting depth on the emitting thread (0 = top)
  std::vector<Arg> args;
};

/// A timestamped counter sample (chrome tracing "ph":"C").
struct CounterEvent {
  std::string name;
  std::int64_t t_us = 0;
  double value = 0;
};

/// Thread-safe event sink. Events are appended under a mutex; snapshot
/// accessors copy, so a live session can be exported at any point.
class TraceSession {
 public:
  TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Microseconds elapsed since the session was constructed.
  std::int64_t now_us() const;

  void emit_span(SpanEvent ev);
  void emit_counter(std::string_view name, std::int64_t t_us, double value);

  /// Named-counter registry: totals += delta. Deterministic given a
  /// deterministic sequence of calls (doubles are summed in call order on
  /// each name; instrument from serial code for bit-reproducibility).
  void add_counter_total(std::string_view name, double delta);

  std::vector<SpanEvent> spans() const;
  std::vector<CounterEvent> counter_samples() const;
  /// Sorted by name, so exports and comparisons are order-independent.
  std::map<std::string, double> counter_totals() const;

 private:
  Clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanEvent> spans_;
  std::vector<CounterEvent> counters_;
  std::map<std::string, double> totals_;
};

/// Installs `session` as the process-wide sink (nullptr disables tracing).
/// Not owning; the caller keeps the session alive while installed.
void install(TraceSession* session);

/// The installed session, or nullptr when tracing is disabled. One relaxed
/// atomic load; branch on it before doing any per-event work.
TraceSession* session();

/// RAII: installs a session for the guard's lifetime.
class SessionGuard {
 public:
  explicit SessionGuard(TraceSession& s) { install(&s); }
  ~SessionGuard() { install(nullptr); }
  SessionGuard(const SessionGuard&) = delete;
  SessionGuard& operator=(const SessionGuard&) = delete;
};

/// RAII span: captures the installed session at construction, times its own
/// scope, and emits one SpanEvent at destruction. No-op when tracing is off.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name,
                      std::string_view category = "default");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a key=value annotation (no-op when tracing is off).
  void arg(std::string_view key, double value);

  bool active() const { return session_ != nullptr; }

 private:
  TraceSession* session_;  ///< nullptr => disabled, every member is a no-op
  SpanEvent event_;
  Clock::time_point start_;
};

/// Bumps a registry total on the installed session; no-op when disabled.
void counter_add(std::string_view name, double delta);

}  // namespace eroof::trace
