// Exporters for TraceSession: chrome://tracing JSON and CSV.
//
// The JSON exporter emits the Trace Event Format that chrome://tracing /
// Perfetto load directly: spans become complete ("ph":"X") events, counter
// samples become counter ("ph":"C") events, and the registry totals ride in
// "otherData". The CSV exporters write one flat table per event kind so the
// numbers can be regridded with any plotting tool; matching parsers are
// provided so regression tests can round-trip a session through disk.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "trace/trace.hpp"

namespace eroof::trace {

/// Writes the whole session as a chrome://tracing JSON object.
void write_chrome_trace(const TraceSession& session, std::ostream& os);

/// Same, to a file. Returns false if the file could not be written.
bool write_chrome_trace(const TraceSession& session, const std::string& path);

/// Spans as CSV: name,category,tid,depth,start_us,dur_us,args where args is
/// `key=value` pairs joined by ';' (doubles printed with 17 significant
/// digits so parse_spans_csv round-trips bit-exactly).
void write_spans_csv(const TraceSession& session, std::ostream& os);

/// Counter samples and registry totals as CSV: kind,name,t_us,value with
/// kind "sample" or "total" (totals carry t_us 0).
void write_counters_csv(const TraceSession& session, std::ostream& os);

/// Inverse of write_spans_csv / write_counters_csv (header line expected).
std::vector<SpanEvent> parse_spans_csv(std::istream& is);
struct ParsedCounters {
  std::vector<CounterEvent> samples;
  std::map<std::string, double> totals;
};
ParsedCounters parse_counters_csv(std::istream& is);

/// Command-line tracing for the bench/example binaries.
///
/// Scans argv for `--trace=FILE` (chrome JSON) and `--trace-csv=PREFIX`
/// (writes PREFIX.spans.csv + PREFIX.counters.csv), removes the flags so
/// positional-argument parsing keeps working, and installs a session for the
/// tracer's lifetime when either flag is present. The destructor writes the
/// requested files and reports them on stderr.
class CliTracer {
 public:
  CliTracer(int& argc, char** argv);
  ~CliTracer();
  CliTracer(const CliTracer&) = delete;
  CliTracer& operator=(const CliTracer&) = delete;

  bool enabled() const { return session_ != nullptr; }
  TraceSession* session() { return session_.get(); }

 private:
  std::string json_path_;
  std::string csv_prefix_;
  std::unique_ptr<TraceSession> session_;
};

}  // namespace eroof::trace
