#include "trace/trace.hpp"

namespace eroof::trace {
namespace {

std::atomic<TraceSession*> g_session{nullptr};

// Session-scope thread indices: the first thread to emit gets 0, the next 1,
// and so on. Stable for the life of the process (OpenMP worker pools are
// reused across parallel regions, so phase spans from the same worker share
// a tid row in the chrome timeline).
std::uint32_t thread_index() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1);
  return id;
}

int& nesting_depth() {
  thread_local int depth = 0;
  return depth;
}

}  // namespace

TraceSession::TraceSession() : epoch_(Clock::now()) {}

std::int64_t TraceSession::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch_)
      .count();
}

// eroof: cold (trace emission: only runs with an installed session; the
// registry lock and event storage are the accepted cost of tracing)
void TraceSession::emit_span(SpanEvent ev) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(ev));
}

// eroof: cold (trace emission: only runs with an installed session)
void TraceSession::emit_counter(std::string_view name, std::int64_t t_us,
                                double value) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.push_back(CounterEvent{std::string(name), t_us, value});
}

// eroof: cold (trace emission: only runs with an installed session)
void TraceSession::add_counter_total(std::string_view name, double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  totals_[std::string(name)] += delta;
}

std::vector<SpanEvent> TraceSession::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<CounterEvent> TraceSession::counter_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::map<std::string, double> TraceSession::counter_totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_;
}

void install(TraceSession* session) {
  g_session.store(session, std::memory_order_release);
}

TraceSession* session() {
  // Relaxed: install() publishes the session with release, and every
  // emission path synchronizes on the session's own mutex before
  // touching its state; the pointer load needs no ordering of its own.
  return g_session.load(std::memory_order_relaxed);  // eroof-lint: allow(relaxed-atomic)
}

// eroof: cold (span capture: returns immediately without a session; the
// name/category copies are the accepted cost of tracing)
ScopedSpan::ScopedSpan(std::string_view name, std::string_view category)
    : session_(session()) {
  if (!session_) return;
  event_.name = std::string(name);
  event_.category = std::string(category);
  event_.tid = thread_index();
  event_.depth = nesting_depth()++;
  start_ = Clock::now();
  event_.start_us = session_->now_us();
}

// eroof: cold (span capture: no-op without a session)
ScopedSpan::~ScopedSpan() {
  if (!session_) return;
  event_.dur_us = std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - start_)
                      .count();
  --nesting_depth();
  session_->emit_span(std::move(event_));
}

// eroof: cold (span capture: no-op without a session)
void ScopedSpan::arg(std::string_view key, double value) {
  if (!session_) return;
  event_.args.push_back(Arg{std::string(key), value});
}

// eroof: cold (trace emission: no-op without a session)
void counter_add(std::string_view name, double delta) {
  if (TraceSession* s = session()) s->add_counter_total(name, delta);
}

}  // namespace eroof::trace
