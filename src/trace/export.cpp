#include "trace/export.hpp"

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

namespace eroof::trace {
namespace {

/// %.17g: enough digits that a double survives text round-trips bit-exactly.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// JSON string escaping. Names and keys are controlled identifiers, but the
/// exporter must never produce an unloadable file.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

void write_chrome_trace(const TraceSession& session, std::ostream& os) {
  const auto spans = session.spans();
  const auto samples = session.counter_samples();
  const auto totals = session.counter_totals();

  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& s : spans) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(s.name) << "\",\"cat\":\""
       << json_escape(s.category) << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
       << s.tid << ",\"ts\":" << s.start_us << ",\"dur\":" << s.dur_us
       << ",\"args\":{";
    for (std::size_t i = 0; i < s.args.size(); ++i) {
      if (i) os << ",";
      os << "\"" << json_escape(s.args[i].key) << "\":" << num(s.args[i].value);
    }
    os << "}}";
  }
  for (const auto& c : samples) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(c.name)
       << "\",\"ph\":\"C\",\"pid\":1,\"ts\":" << c.t_us << ",\"args\":{\""
       << json_escape(c.name) << "\":" << num(c.value) << "}}";
  }
  os << "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{";
  first = true;
  for (const auto& [name, value] : totals) {
    if (!first) os << ",";
    first = false;
    os << "\n\"" << json_escape(name) << "\":" << num(value);
  }
  os << "\n}}\n";
}

bool write_chrome_trace(const TraceSession& session, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(session, out);
  return static_cast<bool>(out);
}

void write_spans_csv(const TraceSession& session, std::ostream& os) {
  os << "name,category,tid,depth,start_us,dur_us,args\n";
  for (const auto& s : session.spans()) {
    os << s.name << "," << s.category << "," << s.tid << "," << s.depth << ","
       << s.start_us << "," << s.dur_us << ",";
    for (std::size_t i = 0; i < s.args.size(); ++i) {
      if (i) os << ";";
      os << s.args[i].key << "=" << num(s.args[i].value);
    }
    os << "\n";
  }
}

void write_counters_csv(const TraceSession& session, std::ostream& os) {
  os << "kind,name,t_us,value\n";
  for (const auto& c : session.counter_samples())
    os << "sample," << c.name << "," << c.t_us << "," << num(c.value) << "\n";
  for (const auto& [name, value] : session.counter_totals())
    os << "total," << name << ",0," << num(value) << "\n";
}

std::vector<SpanEvent> parse_spans_csv(std::istream& is) {
  std::vector<SpanEvent> out;
  std::string line;
  std::getline(is, line);  // header
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split(line, ',');
    if (cells.size() != 7) continue;
    SpanEvent s;
    s.name = cells[0];
    s.category = cells[1];
    s.tid = static_cast<std::uint32_t>(std::stoul(cells[2]));
    s.depth = std::stoi(cells[3]);
    s.start_us = std::stoll(cells[4]);
    s.dur_us = std::stoll(cells[5]);
    if (!cells[6].empty()) {
      for (const auto& kv : split(cells[6], ';')) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos) continue;
        s.args.push_back(Arg{kv.substr(0, eq), std::stod(kv.substr(eq + 1))});
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

ParsedCounters parse_counters_csv(std::istream& is) {
  ParsedCounters out;
  std::string line;
  std::getline(is, line);  // header
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split(line, ',');
    if (cells.size() != 4) continue;
    if (cells[0] == "sample")
      out.samples.push_back(
          CounterEvent{cells[1], std::stoll(cells[2]), std::stod(cells[3])});
    else if (cells[0] == "total")
      out.totals[cells[1]] = std::stod(cells[3]);
  }
  return out;
}

CliTracer::CliTracer(int& argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a.rfind("--trace=", 0) == 0) {
      json_path_ = a.substr(std::strlen("--trace="));
    } else if (a.rfind("--trace-csv=", 0) == 0) {
      csv_prefix_ = a.substr(std::strlen("--trace-csv="));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (!json_path_.empty() || !csv_prefix_.empty()) {
    session_ = std::make_unique<TraceSession>();
    install(session_.get());
  }
}

CliTracer::~CliTracer() {
  if (!session_) return;
  install(nullptr);
  if (!json_path_.empty()) {
    if (write_chrome_trace(*session_, json_path_))
      std::cerr << "trace: wrote " << json_path_ << " ("
                << session_->spans().size() << " spans, "
                << session_->counter_samples().size() << " counter samples)\n";
    else
      std::cerr << "trace: FAILED to write " << json_path_ << "\n";
  }
  if (!csv_prefix_.empty()) {
    std::ofstream sp(csv_prefix_ + ".spans.csv");
    write_spans_csv(*session_, sp);
    std::ofstream co(csv_prefix_ + ".counters.csv");
    write_counters_csv(*session_, co);
    std::cerr << "trace: wrote " << csv_prefix_ << ".spans.csv / "
              << csv_prefix_ << ".counters.csv\n";
  }
}

}  // namespace eroof::trace
