# Empty compiler generated dependencies file for kernel_zoo.
# This may be replaced when dependencies are built.
