file(REMOVE_RECURSE
  "CMakeFiles/kernel_zoo.dir/kernel_zoo.cpp.o"
  "CMakeFiles/kernel_zoo.dir/kernel_zoo.cpp.o.d"
  "kernel_zoo"
  "kernel_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
