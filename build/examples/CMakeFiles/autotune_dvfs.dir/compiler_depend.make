# Empty compiler generated dependencies file for autotune_dvfs.
# This may be replaced when dependencies are built.
