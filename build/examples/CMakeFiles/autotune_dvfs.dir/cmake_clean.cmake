file(REMOVE_RECURSE
  "CMakeFiles/autotune_dvfs.dir/autotune_dvfs.cpp.o"
  "CMakeFiles/autotune_dvfs.dir/autotune_dvfs.cpp.o.d"
  "autotune_dvfs"
  "autotune_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
