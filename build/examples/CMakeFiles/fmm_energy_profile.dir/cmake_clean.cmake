file(REMOVE_RECURSE
  "CMakeFiles/fmm_energy_profile.dir/fmm_energy_profile.cpp.o"
  "CMakeFiles/fmm_energy_profile.dir/fmm_energy_profile.cpp.o.d"
  "fmm_energy_profile"
  "fmm_energy_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmm_energy_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
