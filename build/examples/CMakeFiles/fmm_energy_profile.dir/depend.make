# Empty dependencies file for fmm_energy_profile.
# This may be replaced when dependencies are built.
