# Empty compiler generated dependencies file for fmm_gravity.
# This may be replaced when dependencies are built.
