file(REMOVE_RECURSE
  "CMakeFiles/fmm_gravity.dir/fmm_gravity.cpp.o"
  "CMakeFiles/fmm_gravity.dir/fmm_gravity.cpp.o.d"
  "fmm_gravity"
  "fmm_gravity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmm_gravity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
