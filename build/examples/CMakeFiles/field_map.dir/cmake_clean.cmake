file(REMOVE_RECURSE
  "CMakeFiles/field_map.dir/field_map.cpp.o"
  "CMakeFiles/field_map.dir/field_map.cpp.o.d"
  "field_map"
  "field_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
