# Empty dependencies file for field_map.
# This may be replaced when dependencies are built.
