# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kernel_zoo "/root/repo/build/examples/kernel_zoo" "2048")
set_tests_properties(example_kernel_zoo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_prefetch_whatif "/root/repo/build/examples/prefetch_whatif")
set_tests_properties(example_prefetch_whatif PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fmm_gravity "/root/repo/build/examples/fmm_gravity" "8192" "64" "4")
set_tests_properties(example_fmm_gravity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_field_map "/root/repo/build/examples/field_map" "4096" "24")
set_tests_properties(example_field_map PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_autotune_dvfs "/root/repo/build/examples/autotune_dvfs")
set_tests_properties(example_autotune_dvfs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fmm_energy_profile "/root/repo/build/examples/fmm_energy_profile" "16384" "64")
set_tests_properties(example_fmm_energy_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
