file(REMOVE_RECURSE
  "CMakeFiles/ablation_q_sweep.dir/ablation_q_sweep.cpp.o"
  "CMakeFiles/ablation_q_sweep.dir/ablation_q_sweep.cpp.o.d"
  "ablation_q_sweep"
  "ablation_q_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_q_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
