# Empty dependencies file for ablation_q_sweep.
# This may be replaced when dependencies are built.
