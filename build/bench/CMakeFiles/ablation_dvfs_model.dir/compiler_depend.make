# Empty compiler generated dependencies file for ablation_dvfs_model.
# This may be replaced when dependencies are built.
