file(REMOVE_RECURSE
  "CMakeFiles/table2_autotune.dir/table2_autotune.cpp.o"
  "CMakeFiles/table2_autotune.dir/table2_autotune.cpp.o.d"
  "table2_autotune"
  "table2_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
