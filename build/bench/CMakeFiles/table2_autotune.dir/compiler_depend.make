# Empty compiler generated dependencies file for table2_autotune.
# This may be replaced when dependencies are built.
