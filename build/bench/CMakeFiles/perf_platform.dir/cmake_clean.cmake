file(REMOVE_RECURSE
  "CMakeFiles/perf_platform.dir/perf_platform.cpp.o"
  "CMakeFiles/perf_platform.dir/perf_platform.cpp.o.d"
  "perf_platform"
  "perf_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
