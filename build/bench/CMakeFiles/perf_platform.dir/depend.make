# Empty dependencies file for perf_platform.
# This may be replaced when dependencies are built.
