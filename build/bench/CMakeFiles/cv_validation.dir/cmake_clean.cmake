file(REMOVE_RECURSE
  "CMakeFiles/cv_validation.dir/cv_validation.cpp.o"
  "CMakeFiles/cv_validation.dir/cv_validation.cpp.o.d"
  "cv_validation"
  "cv_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
