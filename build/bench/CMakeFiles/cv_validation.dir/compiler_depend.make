# Empty compiler generated dependencies file for cv_validation.
# This may be replaced when dependencies are built.
