file(REMOVE_RECURSE
  "CMakeFiles/ablation_m2l_fft.dir/ablation_m2l_fft.cpp.o"
  "CMakeFiles/ablation_m2l_fft.dir/ablation_m2l_fft.cpp.o.d"
  "ablation_m2l_fft"
  "ablation_m2l_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_m2l_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
