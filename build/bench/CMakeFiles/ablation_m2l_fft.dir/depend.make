# Empty dependencies file for ablation_m2l_fft.
# This may be replaced when dependencies are built.
