# Empty dependencies file for fig6_energy_breakdown.
# This may be replaced when dependencies are built.
