# Empty compiler generated dependencies file for perf_fmm.
# This may be replaced when dependencies are built.
