
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/perf_fmm.cpp" "bench/CMakeFiles/perf_fmm.dir/perf_fmm.cpp.o" "gcc" "bench/CMakeFiles/perf_fmm.dir/perf_fmm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/eroof_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fmm/CMakeFiles/eroof_fmm.dir/DependInfo.cmake"
  "/root/repo/build/src/ubench/CMakeFiles/eroof_ubench.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/eroof_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/eroof_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/eroof_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eroof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
