file(REMOVE_RECURSE
  "CMakeFiles/perf_fmm.dir/perf_fmm.cpp.o"
  "CMakeFiles/perf_fmm.dir/perf_fmm.cpp.o.d"
  "perf_fmm"
  "perf_fmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_fmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
