file(REMOVE_RECURSE
  "CMakeFiles/perf_octree.dir/perf_octree.cpp.o"
  "CMakeFiles/perf_octree.dir/perf_octree.cpp.o.d"
  "perf_octree"
  "perf_octree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_octree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
