# Empty dependencies file for perf_octree.
# This may be replaced when dependencies are built.
