file(REMOVE_RECURSE
  "CMakeFiles/fig5_fmm_validation.dir/fig5_fmm_validation.cpp.o"
  "CMakeFiles/fig5_fmm_validation.dir/fig5_fmm_validation.cpp.o.d"
  "fig5_fmm_validation"
  "fig5_fmm_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_fmm_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
