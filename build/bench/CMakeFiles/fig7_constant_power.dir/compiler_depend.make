# Empty compiler generated dependencies file for fig7_constant_power.
# This may be replaced when dependencies are built.
