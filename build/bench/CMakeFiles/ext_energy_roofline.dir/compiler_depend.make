# Empty compiler generated dependencies file for ext_energy_roofline.
# This may be replaced when dependencies are built.
