file(REMOVE_RECURSE
  "CMakeFiles/ext_energy_roofline.dir/ext_energy_roofline.cpp.o"
  "CMakeFiles/ext_energy_roofline.dir/ext_energy_roofline.cpp.o.d"
  "ext_energy_roofline"
  "ext_energy_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_energy_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
