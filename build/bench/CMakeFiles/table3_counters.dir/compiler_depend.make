# Empty compiler generated dependencies file for table3_counters.
# This may be replaced when dependencies are built.
