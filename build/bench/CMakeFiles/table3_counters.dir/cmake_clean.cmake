file(REMOVE_RECURSE
  "CMakeFiles/table3_counters.dir/table3_counters.cpp.o"
  "CMakeFiles/table3_counters.dir/table3_counters.cpp.o.d"
  "table3_counters"
  "table3_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
