file(REMOVE_RECURSE
  "CMakeFiles/ext_predictive_autotune.dir/ext_predictive_autotune.cpp.o"
  "CMakeFiles/ext_predictive_autotune.dir/ext_predictive_autotune.cpp.o.d"
  "ext_predictive_autotune"
  "ext_predictive_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_predictive_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
