# Empty dependencies file for ext_predictive_autotune.
# This may be replaced when dependencies are built.
