file(REMOVE_RECURSE
  "CMakeFiles/ext_per_phase_dvfs.dir/ext_per_phase_dvfs.cpp.o"
  "CMakeFiles/ext_per_phase_dvfs.dir/ext_per_phase_dvfs.cpp.o.d"
  "ext_per_phase_dvfs"
  "ext_per_phase_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_per_phase_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
