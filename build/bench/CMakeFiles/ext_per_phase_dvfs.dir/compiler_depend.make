# Empty compiler generated dependencies file for ext_per_phase_dvfs.
# This may be replaced when dependencies are built.
