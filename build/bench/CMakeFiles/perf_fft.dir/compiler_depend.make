# Empty compiler generated dependencies file for perf_fft.
# This may be replaced when dependencies are built.
