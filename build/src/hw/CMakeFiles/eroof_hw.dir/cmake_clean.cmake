file(REMOVE_RECURSE
  "CMakeFiles/eroof_hw.dir/cachesim.cpp.o"
  "CMakeFiles/eroof_hw.dir/cachesim.cpp.o.d"
  "CMakeFiles/eroof_hw.dir/counters.cpp.o"
  "CMakeFiles/eroof_hw.dir/counters.cpp.o.d"
  "CMakeFiles/eroof_hw.dir/dvfs.cpp.o"
  "CMakeFiles/eroof_hw.dir/dvfs.cpp.o.d"
  "CMakeFiles/eroof_hw.dir/powermon.cpp.o"
  "CMakeFiles/eroof_hw.dir/powermon.cpp.o.d"
  "CMakeFiles/eroof_hw.dir/soc.cpp.o"
  "CMakeFiles/eroof_hw.dir/soc.cpp.o.d"
  "liberoof_hw.a"
  "liberoof_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eroof_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
