# Empty dependencies file for eroof_hw.
# This may be replaced when dependencies are built.
