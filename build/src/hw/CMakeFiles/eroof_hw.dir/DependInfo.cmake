
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cachesim.cpp" "src/hw/CMakeFiles/eroof_hw.dir/cachesim.cpp.o" "gcc" "src/hw/CMakeFiles/eroof_hw.dir/cachesim.cpp.o.d"
  "/root/repo/src/hw/counters.cpp" "src/hw/CMakeFiles/eroof_hw.dir/counters.cpp.o" "gcc" "src/hw/CMakeFiles/eroof_hw.dir/counters.cpp.o.d"
  "/root/repo/src/hw/dvfs.cpp" "src/hw/CMakeFiles/eroof_hw.dir/dvfs.cpp.o" "gcc" "src/hw/CMakeFiles/eroof_hw.dir/dvfs.cpp.o.d"
  "/root/repo/src/hw/powermon.cpp" "src/hw/CMakeFiles/eroof_hw.dir/powermon.cpp.o" "gcc" "src/hw/CMakeFiles/eroof_hw.dir/powermon.cpp.o.d"
  "/root/repo/src/hw/soc.cpp" "src/hw/CMakeFiles/eroof_hw.dir/soc.cpp.o" "gcc" "src/hw/CMakeFiles/eroof_hw.dir/soc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eroof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
