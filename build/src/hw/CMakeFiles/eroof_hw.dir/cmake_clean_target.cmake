file(REMOVE_RECURSE
  "liberoof_hw.a"
)
