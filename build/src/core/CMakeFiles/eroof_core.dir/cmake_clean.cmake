file(REMOVE_RECURSE
  "CMakeFiles/eroof_core.dir/autotune.cpp.o"
  "CMakeFiles/eroof_core.dir/autotune.cpp.o.d"
  "CMakeFiles/eroof_core.dir/crossval.cpp.o"
  "CMakeFiles/eroof_core.dir/crossval.cpp.o.d"
  "CMakeFiles/eroof_core.dir/fit.cpp.o"
  "CMakeFiles/eroof_core.dir/fit.cpp.o.d"
  "CMakeFiles/eroof_core.dir/model.cpp.o"
  "CMakeFiles/eroof_core.dir/model.cpp.o.d"
  "CMakeFiles/eroof_core.dir/profile.cpp.o"
  "CMakeFiles/eroof_core.dir/profile.cpp.o.d"
  "CMakeFiles/eroof_core.dir/timemodel.cpp.o"
  "CMakeFiles/eroof_core.dir/timemodel.cpp.o.d"
  "liberoof_core.a"
  "liberoof_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eroof_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
