file(REMOVE_RECURSE
  "liberoof_core.a"
)
