
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/autotune.cpp" "src/core/CMakeFiles/eroof_core.dir/autotune.cpp.o" "gcc" "src/core/CMakeFiles/eroof_core.dir/autotune.cpp.o.d"
  "/root/repo/src/core/crossval.cpp" "src/core/CMakeFiles/eroof_core.dir/crossval.cpp.o" "gcc" "src/core/CMakeFiles/eroof_core.dir/crossval.cpp.o.d"
  "/root/repo/src/core/fit.cpp" "src/core/CMakeFiles/eroof_core.dir/fit.cpp.o" "gcc" "src/core/CMakeFiles/eroof_core.dir/fit.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/eroof_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/eroof_core.dir/model.cpp.o.d"
  "/root/repo/src/core/profile.cpp" "src/core/CMakeFiles/eroof_core.dir/profile.cpp.o" "gcc" "src/core/CMakeFiles/eroof_core.dir/profile.cpp.o.d"
  "/root/repo/src/core/timemodel.cpp" "src/core/CMakeFiles/eroof_core.dir/timemodel.cpp.o" "gcc" "src/core/CMakeFiles/eroof_core.dir/timemodel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/eroof_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/eroof_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eroof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
