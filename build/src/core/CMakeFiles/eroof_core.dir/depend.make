# Empty dependencies file for eroof_core.
# This may be replaced when dependencies are built.
