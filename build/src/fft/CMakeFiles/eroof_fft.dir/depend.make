# Empty dependencies file for eroof_fft.
# This may be replaced when dependencies are built.
