file(REMOVE_RECURSE
  "CMakeFiles/eroof_fft.dir/fft.cpp.o"
  "CMakeFiles/eroof_fft.dir/fft.cpp.o.d"
  "CMakeFiles/eroof_fft.dir/fft3.cpp.o"
  "CMakeFiles/eroof_fft.dir/fft3.cpp.o.d"
  "liberoof_fft.a"
  "liberoof_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eroof_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
