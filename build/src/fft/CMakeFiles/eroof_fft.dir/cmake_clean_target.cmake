file(REMOVE_RECURSE
  "liberoof_fft.a"
)
