file(REMOVE_RECURSE
  "CMakeFiles/eroof_fmm.dir/direct.cpp.o"
  "CMakeFiles/eroof_fmm.dir/direct.cpp.o.d"
  "CMakeFiles/eroof_fmm.dir/evaluator.cpp.o"
  "CMakeFiles/eroof_fmm.dir/evaluator.cpp.o.d"
  "CMakeFiles/eroof_fmm.dir/gpu_profile.cpp.o"
  "CMakeFiles/eroof_fmm.dir/gpu_profile.cpp.o.d"
  "CMakeFiles/eroof_fmm.dir/kernel.cpp.o"
  "CMakeFiles/eroof_fmm.dir/kernel.cpp.o.d"
  "CMakeFiles/eroof_fmm.dir/lists.cpp.o"
  "CMakeFiles/eroof_fmm.dir/lists.cpp.o.d"
  "CMakeFiles/eroof_fmm.dir/morton.cpp.o"
  "CMakeFiles/eroof_fmm.dir/morton.cpp.o.d"
  "CMakeFiles/eroof_fmm.dir/octree.cpp.o"
  "CMakeFiles/eroof_fmm.dir/octree.cpp.o.d"
  "CMakeFiles/eroof_fmm.dir/operators.cpp.o"
  "CMakeFiles/eroof_fmm.dir/operators.cpp.o.d"
  "CMakeFiles/eroof_fmm.dir/pointgen.cpp.o"
  "CMakeFiles/eroof_fmm.dir/pointgen.cpp.o.d"
  "CMakeFiles/eroof_fmm.dir/surface.cpp.o"
  "CMakeFiles/eroof_fmm.dir/surface.cpp.o.d"
  "liberoof_fmm.a"
  "liberoof_fmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eroof_fmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
