file(REMOVE_RECURSE
  "liberoof_fmm.a"
)
