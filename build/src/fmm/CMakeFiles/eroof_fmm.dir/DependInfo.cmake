
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fmm/direct.cpp" "src/fmm/CMakeFiles/eroof_fmm.dir/direct.cpp.o" "gcc" "src/fmm/CMakeFiles/eroof_fmm.dir/direct.cpp.o.d"
  "/root/repo/src/fmm/evaluator.cpp" "src/fmm/CMakeFiles/eroof_fmm.dir/evaluator.cpp.o" "gcc" "src/fmm/CMakeFiles/eroof_fmm.dir/evaluator.cpp.o.d"
  "/root/repo/src/fmm/gpu_profile.cpp" "src/fmm/CMakeFiles/eroof_fmm.dir/gpu_profile.cpp.o" "gcc" "src/fmm/CMakeFiles/eroof_fmm.dir/gpu_profile.cpp.o.d"
  "/root/repo/src/fmm/kernel.cpp" "src/fmm/CMakeFiles/eroof_fmm.dir/kernel.cpp.o" "gcc" "src/fmm/CMakeFiles/eroof_fmm.dir/kernel.cpp.o.d"
  "/root/repo/src/fmm/lists.cpp" "src/fmm/CMakeFiles/eroof_fmm.dir/lists.cpp.o" "gcc" "src/fmm/CMakeFiles/eroof_fmm.dir/lists.cpp.o.d"
  "/root/repo/src/fmm/morton.cpp" "src/fmm/CMakeFiles/eroof_fmm.dir/morton.cpp.o" "gcc" "src/fmm/CMakeFiles/eroof_fmm.dir/morton.cpp.o.d"
  "/root/repo/src/fmm/octree.cpp" "src/fmm/CMakeFiles/eroof_fmm.dir/octree.cpp.o" "gcc" "src/fmm/CMakeFiles/eroof_fmm.dir/octree.cpp.o.d"
  "/root/repo/src/fmm/operators.cpp" "src/fmm/CMakeFiles/eroof_fmm.dir/operators.cpp.o" "gcc" "src/fmm/CMakeFiles/eroof_fmm.dir/operators.cpp.o.d"
  "/root/repo/src/fmm/pointgen.cpp" "src/fmm/CMakeFiles/eroof_fmm.dir/pointgen.cpp.o" "gcc" "src/fmm/CMakeFiles/eroof_fmm.dir/pointgen.cpp.o.d"
  "/root/repo/src/fmm/surface.cpp" "src/fmm/CMakeFiles/eroof_fmm.dir/surface.cpp.o" "gcc" "src/fmm/CMakeFiles/eroof_fmm.dir/surface.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fft/CMakeFiles/eroof_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/eroof_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/eroof_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eroof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
