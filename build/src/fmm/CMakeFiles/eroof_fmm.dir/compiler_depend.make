# Empty compiler generated dependencies file for eroof_fmm.
# This may be replaced when dependencies are built.
