# Empty compiler generated dependencies file for eroof_ubench.
# This may be replaced when dependencies are built.
