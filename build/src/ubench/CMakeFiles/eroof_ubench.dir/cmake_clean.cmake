file(REMOVE_RECURSE
  "CMakeFiles/eroof_ubench.dir/campaign.cpp.o"
  "CMakeFiles/eroof_ubench.dir/campaign.cpp.o.d"
  "CMakeFiles/eroof_ubench.dir/kernels.cpp.o"
  "CMakeFiles/eroof_ubench.dir/kernels.cpp.o.d"
  "CMakeFiles/eroof_ubench.dir/suite.cpp.o"
  "CMakeFiles/eroof_ubench.dir/suite.cpp.o.d"
  "liberoof_ubench.a"
  "liberoof_ubench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eroof_ubench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
