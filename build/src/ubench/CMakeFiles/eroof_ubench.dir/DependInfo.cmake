
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ubench/campaign.cpp" "src/ubench/CMakeFiles/eroof_ubench.dir/campaign.cpp.o" "gcc" "src/ubench/CMakeFiles/eroof_ubench.dir/campaign.cpp.o.d"
  "/root/repo/src/ubench/kernels.cpp" "src/ubench/CMakeFiles/eroof_ubench.dir/kernels.cpp.o" "gcc" "src/ubench/CMakeFiles/eroof_ubench.dir/kernels.cpp.o.d"
  "/root/repo/src/ubench/suite.cpp" "src/ubench/CMakeFiles/eroof_ubench.dir/suite.cpp.o" "gcc" "src/ubench/CMakeFiles/eroof_ubench.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/eroof_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eroof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
