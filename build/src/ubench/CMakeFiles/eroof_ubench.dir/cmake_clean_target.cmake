file(REMOVE_RECURSE
  "liberoof_ubench.a"
)
