# Empty compiler generated dependencies file for eroof_linalg.
# This may be replaced when dependencies are built.
