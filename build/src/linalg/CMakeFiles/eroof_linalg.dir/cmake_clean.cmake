file(REMOVE_RECURSE
  "CMakeFiles/eroof_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/eroof_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/eroof_linalg.dir/matrix.cpp.o"
  "CMakeFiles/eroof_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/eroof_linalg.dir/nnls.cpp.o"
  "CMakeFiles/eroof_linalg.dir/nnls.cpp.o.d"
  "CMakeFiles/eroof_linalg.dir/qr.cpp.o"
  "CMakeFiles/eroof_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/eroof_linalg.dir/svd.cpp.o"
  "CMakeFiles/eroof_linalg.dir/svd.cpp.o.d"
  "liberoof_linalg.a"
  "liberoof_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eroof_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
