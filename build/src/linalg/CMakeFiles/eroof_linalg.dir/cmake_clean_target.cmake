file(REMOVE_RECURSE
  "liberoof_linalg.a"
)
