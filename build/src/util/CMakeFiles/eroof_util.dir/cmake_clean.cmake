file(REMOVE_RECURSE
  "CMakeFiles/eroof_util.dir/csv.cpp.o"
  "CMakeFiles/eroof_util.dir/csv.cpp.o.d"
  "CMakeFiles/eroof_util.dir/stats.cpp.o"
  "CMakeFiles/eroof_util.dir/stats.cpp.o.d"
  "CMakeFiles/eroof_util.dir/table.cpp.o"
  "CMakeFiles/eroof_util.dir/table.cpp.o.d"
  "liberoof_util.a"
  "liberoof_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eroof_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
