# Empty compiler generated dependencies file for eroof_util.
# This may be replaced when dependencies are built.
