file(REMOVE_RECURSE
  "liberoof_util.a"
)
