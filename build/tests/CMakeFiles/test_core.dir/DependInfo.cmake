
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_autotune.cpp" "tests/CMakeFiles/test_core.dir/core/test_autotune.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_autotune.cpp.o.d"
  "/root/repo/tests/core/test_crossval.cpp" "tests/CMakeFiles/test_core.dir/core/test_crossval.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_crossval.cpp.o.d"
  "/root/repo/tests/core/test_fit.cpp" "tests/CMakeFiles/test_core.dir/core/test_fit.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_fit.cpp.o.d"
  "/root/repo/tests/core/test_model.cpp" "tests/CMakeFiles/test_core.dir/core/test_model.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_model.cpp.o.d"
  "/root/repo/tests/core/test_profile.cpp" "tests/CMakeFiles/test_core.dir/core/test_profile.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_profile.cpp.o.d"
  "/root/repo/tests/core/test_timemodel.cpp" "tests/CMakeFiles/test_core.dir/core/test_timemodel.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_timemodel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/eroof_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fmm/CMakeFiles/eroof_fmm.dir/DependInfo.cmake"
  "/root/repo/build/src/ubench/CMakeFiles/eroof_ubench.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/eroof_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/eroof_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/eroof_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eroof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
