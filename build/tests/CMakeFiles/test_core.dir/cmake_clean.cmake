file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_autotune.cpp.o"
  "CMakeFiles/test_core.dir/core/test_autotune.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_crossval.cpp.o"
  "CMakeFiles/test_core.dir/core/test_crossval.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_fit.cpp.o"
  "CMakeFiles/test_core.dir/core/test_fit.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_model.cpp.o"
  "CMakeFiles/test_core.dir/core/test_model.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_profile.cpp.o"
  "CMakeFiles/test_core.dir/core/test_profile.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_timemodel.cpp.o"
  "CMakeFiles/test_core.dir/core/test_timemodel.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
