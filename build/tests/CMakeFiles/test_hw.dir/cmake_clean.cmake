file(REMOVE_RECURSE
  "CMakeFiles/test_hw.dir/hw/test_cachesim.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_cachesim.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/test_cachesim_property.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_cachesim_property.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/test_counters.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_counters.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/test_dvfs.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_dvfs.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/test_powermon.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_powermon.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/test_soc.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_soc.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/test_soc_activity.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_soc_activity.cpp.o.d"
  "test_hw"
  "test_hw.pdb"
  "test_hw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
