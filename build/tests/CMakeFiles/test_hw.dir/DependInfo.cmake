
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hw/test_cachesim.cpp" "tests/CMakeFiles/test_hw.dir/hw/test_cachesim.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_cachesim.cpp.o.d"
  "/root/repo/tests/hw/test_cachesim_property.cpp" "tests/CMakeFiles/test_hw.dir/hw/test_cachesim_property.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_cachesim_property.cpp.o.d"
  "/root/repo/tests/hw/test_counters.cpp" "tests/CMakeFiles/test_hw.dir/hw/test_counters.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_counters.cpp.o.d"
  "/root/repo/tests/hw/test_dvfs.cpp" "tests/CMakeFiles/test_hw.dir/hw/test_dvfs.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_dvfs.cpp.o.d"
  "/root/repo/tests/hw/test_powermon.cpp" "tests/CMakeFiles/test_hw.dir/hw/test_powermon.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_powermon.cpp.o.d"
  "/root/repo/tests/hw/test_soc.cpp" "tests/CMakeFiles/test_hw.dir/hw/test_soc.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_soc.cpp.o.d"
  "/root/repo/tests/hw/test_soc_activity.cpp" "tests/CMakeFiles/test_hw.dir/hw/test_soc_activity.cpp.o" "gcc" "tests/CMakeFiles/test_hw.dir/hw/test_soc_activity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/eroof_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fmm/CMakeFiles/eroof_fmm.dir/DependInfo.cmake"
  "/root/repo/build/src/ubench/CMakeFiles/eroof_ubench.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/eroof_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/eroof_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/eroof_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eroof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
