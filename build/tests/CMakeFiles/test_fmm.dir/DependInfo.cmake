
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fmm/test_accuracy.cpp" "tests/CMakeFiles/test_fmm.dir/fmm/test_accuracy.cpp.o" "gcc" "tests/CMakeFiles/test_fmm.dir/fmm/test_accuracy.cpp.o.d"
  "/root/repo/tests/fmm/test_edge_cases.cpp" "tests/CMakeFiles/test_fmm.dir/fmm/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/test_fmm.dir/fmm/test_edge_cases.cpp.o.d"
  "/root/repo/tests/fmm/test_evaluate_at.cpp" "tests/CMakeFiles/test_fmm.dir/fmm/test_evaluate_at.cpp.o" "gcc" "tests/CMakeFiles/test_fmm.dir/fmm/test_evaluate_at.cpp.o.d"
  "/root/repo/tests/fmm/test_geometry.cpp" "tests/CMakeFiles/test_fmm.dir/fmm/test_geometry.cpp.o" "gcc" "tests/CMakeFiles/test_fmm.dir/fmm/test_geometry.cpp.o.d"
  "/root/repo/tests/fmm/test_gpu_profile.cpp" "tests/CMakeFiles/test_fmm.dir/fmm/test_gpu_profile.cpp.o" "gcc" "tests/CMakeFiles/test_fmm.dir/fmm/test_gpu_profile.cpp.o.d"
  "/root/repo/tests/fmm/test_invariance.cpp" "tests/CMakeFiles/test_fmm.dir/fmm/test_invariance.cpp.o" "gcc" "tests/CMakeFiles/test_fmm.dir/fmm/test_invariance.cpp.o.d"
  "/root/repo/tests/fmm/test_kernels.cpp" "tests/CMakeFiles/test_fmm.dir/fmm/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/test_fmm.dir/fmm/test_kernels.cpp.o.d"
  "/root/repo/tests/fmm/test_lists.cpp" "tests/CMakeFiles/test_fmm.dir/fmm/test_lists.cpp.o" "gcc" "tests/CMakeFiles/test_fmm.dir/fmm/test_lists.cpp.o.d"
  "/root/repo/tests/fmm/test_morton.cpp" "tests/CMakeFiles/test_fmm.dir/fmm/test_morton.cpp.o" "gcc" "tests/CMakeFiles/test_fmm.dir/fmm/test_morton.cpp.o.d"
  "/root/repo/tests/fmm/test_morton_property.cpp" "tests/CMakeFiles/test_fmm.dir/fmm/test_morton_property.cpp.o" "gcc" "tests/CMakeFiles/test_fmm.dir/fmm/test_morton_property.cpp.o.d"
  "/root/repo/tests/fmm/test_octree.cpp" "tests/CMakeFiles/test_fmm.dir/fmm/test_octree.cpp.o" "gcc" "tests/CMakeFiles/test_fmm.dir/fmm/test_octree.cpp.o.d"
  "/root/repo/tests/fmm/test_operators.cpp" "tests/CMakeFiles/test_fmm.dir/fmm/test_operators.cpp.o" "gcc" "tests/CMakeFiles/test_fmm.dir/fmm/test_operators.cpp.o.d"
  "/root/repo/tests/fmm/test_surface.cpp" "tests/CMakeFiles/test_fmm.dir/fmm/test_surface.cpp.o" "gcc" "tests/CMakeFiles/test_fmm.dir/fmm/test_surface.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/eroof_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fmm/CMakeFiles/eroof_fmm.dir/DependInfo.cmake"
  "/root/repo/build/src/ubench/CMakeFiles/eroof_ubench.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/eroof_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/eroof_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/eroof_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eroof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
