file(REMOVE_RECURSE
  "CMakeFiles/test_fmm.dir/fmm/test_accuracy.cpp.o"
  "CMakeFiles/test_fmm.dir/fmm/test_accuracy.cpp.o.d"
  "CMakeFiles/test_fmm.dir/fmm/test_edge_cases.cpp.o"
  "CMakeFiles/test_fmm.dir/fmm/test_edge_cases.cpp.o.d"
  "CMakeFiles/test_fmm.dir/fmm/test_evaluate_at.cpp.o"
  "CMakeFiles/test_fmm.dir/fmm/test_evaluate_at.cpp.o.d"
  "CMakeFiles/test_fmm.dir/fmm/test_geometry.cpp.o"
  "CMakeFiles/test_fmm.dir/fmm/test_geometry.cpp.o.d"
  "CMakeFiles/test_fmm.dir/fmm/test_gpu_profile.cpp.o"
  "CMakeFiles/test_fmm.dir/fmm/test_gpu_profile.cpp.o.d"
  "CMakeFiles/test_fmm.dir/fmm/test_invariance.cpp.o"
  "CMakeFiles/test_fmm.dir/fmm/test_invariance.cpp.o.d"
  "CMakeFiles/test_fmm.dir/fmm/test_kernels.cpp.o"
  "CMakeFiles/test_fmm.dir/fmm/test_kernels.cpp.o.d"
  "CMakeFiles/test_fmm.dir/fmm/test_lists.cpp.o"
  "CMakeFiles/test_fmm.dir/fmm/test_lists.cpp.o.d"
  "CMakeFiles/test_fmm.dir/fmm/test_morton.cpp.o"
  "CMakeFiles/test_fmm.dir/fmm/test_morton.cpp.o.d"
  "CMakeFiles/test_fmm.dir/fmm/test_morton_property.cpp.o"
  "CMakeFiles/test_fmm.dir/fmm/test_morton_property.cpp.o.d"
  "CMakeFiles/test_fmm.dir/fmm/test_octree.cpp.o"
  "CMakeFiles/test_fmm.dir/fmm/test_octree.cpp.o.d"
  "CMakeFiles/test_fmm.dir/fmm/test_operators.cpp.o"
  "CMakeFiles/test_fmm.dir/fmm/test_operators.cpp.o.d"
  "CMakeFiles/test_fmm.dir/fmm/test_surface.cpp.o"
  "CMakeFiles/test_fmm.dir/fmm/test_surface.cpp.o.d"
  "test_fmm"
  "test_fmm.pdb"
  "test_fmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
